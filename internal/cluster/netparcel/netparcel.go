// Package netparcel carries parcels between cluster nodes over TCP: the
// real-wire implementation of parcel.Transport. Frames are
// length-prefixed gob — a 4-byte big-endian body length, then one
// gob-encoded frame — so a reader never depends on gob's internal
// buffering to find message boundaries.
//
// Each peer gets a small connection pool (ConnsPerPeer). Writers
// coalesce: frames queue on a per-connection channel and the writer
// goroutine encodes everything pending before flushing the buffered
// writer once — a burst of stage hand-offs or percolation fetches pays
// one syscall, the way a parcel batch amortizes round trips. Calls are
// split transactions matched by sequence number, bounded per peer by an
// outstanding-call window (Window) so a slow peer backpressures its
// callers instead of accumulating unbounded in-flight state.
package netparcel

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parcel"
)

// Frame kinds. hello identifies the dialing node; send is one-way; call
// expects a reply with the same Seq.
const (
	kindHello = iota
	kindSend
	kindCall
	kindReply
)

// frame is the unit on the wire.
type frame struct {
	Kind   uint8
	Seq    uint64
	From   string // sender NodeID (hello); unused on other kinds
	Addr   string // sender's dialable address (hello)
	Method string
	Body   []byte
	Err    string // reply only: handler error, empty for success
}

// Config tunes a transport; the zero value is usable.
type Config struct {
	// ConnsPerPeer is the connection-pool size per peer (default 2).
	ConnsPerPeer int
	// Window bounds outstanding calls per peer (default 256).
	Window int
	// CallTimeout fails a call whose reply has not arrived (default 30s)
	// — a wedged peer must not wedge its callers forever.
	CallTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ConnsPerPeer <= 0 {
		c.ConnsPerPeer = 2
	}
	if c.Window <= 0 {
		c.Window = 256
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 30 * time.Second
	}
	return c
}

// Transport is the TCP implementation of parcel.Transport.
type Transport struct {
	self parcel.NodeID
	cfg  Config
	ln   net.Listener

	mu       sync.RWMutex
	peers    map[parcel.NodeID]*peer
	handlers map[string]parcel.TransportHandler
	closed   atomic.Bool
	wg       sync.WaitGroup

	seq     atomic.Uint64
	pending sync.Map // seq -> pendingCall

	// faults, when set, is consulted before every Send/Call — the same
	// injector surface the in-process fabric offers, so failure
	// scenarios run identically on real sockets.
	faults atomic.Pointer[parcel.Faults]

	// Inbound handler execution runs through a bounded worker pool
	// (hworkers <= cfg.Window): a burst of frames from one peer queues
	// here instead of spawning one goroutine per frame.
	hmu      sync.Mutex
	hqueue   []htask
	hworkers int

	bytesSent, bytesRecv     atomic.Int64
	parcelsSent, parcelsRecv atomic.Int64
	calls                    atomic.Int64
}

// htask is one queued inbound handler invocation.
type htask func()

// peer is the pooled connection state for one remote node.
type peer struct {
	id    parcel.NodeID
	mu    sync.Mutex
	conns []*wconn
	next  atomic.Uint64 // round-robin pool index
	sem   chan struct{} // outstanding-call window
}

// wconn is one live connection with its coalescing writer queue.
type wconn struct {
	c      net.Conn
	out    chan frame
	closed atomic.Bool
	tr     *Transport
}

// pendingCall is one outstanding Call: the reply channel and the
// connection the request left on, so a dying connection can fail
// exactly the calls stranded on it.
type pendingCall struct {
	w  *wconn
	ch chan frame
}

var errClosed = parcel.ErrTransportClosed

// Listen starts a transport for node self on addr (host:port; port 0
// picks a free one). The transport accepts peers immediately.
func Listen(self parcel.NodeID, addr string, cfg Config) (*Transport, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	t := &Transport{
		self:     self,
		cfg:      cfg.withDefaults(),
		ln:       ln,
		peers:    make(map[parcel.NodeID]*peer),
		handlers: make(map[string]parcel.TransportHandler),
	}
	t.wg.Add(1)
	go t.accept()
	return t, nil
}

// Self returns the node id this transport was started with.
func (t *Transport) Self() parcel.NodeID { return t.self }

// Addr returns the listener's address — what peers Dial.
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Handle installs the handler for a method (re-registration replaces).
func (t *Transport) Handle(method string, h parcel.TransportHandler) {
	if h == nil {
		panic("netparcel: nil handler")
	}
	t.mu.Lock()
	t.handlers[method] = h
	t.mu.Unlock()
}

func (t *Transport) handler(method string) (parcel.TransportHandler, bool) {
	t.mu.RLock()
	h, ok := t.handlers[method]
	t.mu.RUnlock()
	return h, ok
}

// Dial connects to the node listening at addr, exchanges hellos, and
// returns its NodeID, opening ConnsPerPeer pooled connections. Dialing
// an already-pooled peer is a no-op beyond the first connection.
func (t *Transport) Dial(addr string) (parcel.NodeID, error) {
	id, err := t.dialOne(addr)
	if err != nil {
		return "", err
	}
	for {
		t.mu.RLock()
		p := t.peers[id]
		t.mu.RUnlock()
		p.mu.Lock()
		n := len(p.conns)
		p.mu.Unlock()
		if n >= t.cfg.ConnsPerPeer {
			return id, nil
		}
		if _, err := t.dialOne(addr); err != nil {
			// One live connection is enough to serve traffic.
			return id, nil
		}
	}
}

// dialOne opens one hello-complete connection to addr.
func (t *Transport) dialOne(addr string) (parcel.NodeID, error) {
	if t.closed.Load() {
		return "", errClosed
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return "", err
	}
	// Hello out, hello back: both sides learn who is on the wire before
	// any parcel rides it.
	hello := frame{Kind: kindHello, From: string(t.self), Addr: t.Addr()}
	if err := writeFrame(c, &hello, &t.bytesSent); err != nil {
		c.Close()
		return "", err
	}
	// Read the hello unbuffered: a buffered reader could slurp bytes of
	// the frames that follow it, which belong to the connection's real
	// read loop.
	reply, err := readFrame(c, &t.bytesRecv)
	if err != nil {
		c.Close()
		return "", fmt.Errorf("netparcel: hello to %s: %w", addr, err)
	}
	if reply.Kind != kindHello || reply.From == "" {
		c.Close()
		return "", fmt.Errorf("netparcel: bad hello from %s", addr)
	}
	id := parcel.NodeID(reply.From)
	t.addConn(id, c)
	return id, nil
}

// addConn registers a live, hello-complete connection under the peer and
// starts its reader and coalescing writer.
func (t *Transport) addConn(id parcel.NodeID, c net.Conn) *wconn {
	t.mu.Lock()
	p, ok := t.peers[id]
	if !ok {
		p = &peer{id: id, sem: make(chan struct{}, t.cfg.Window)}
		t.peers[id] = p
	}
	t.mu.Unlock()
	w := &wconn{c: c, out: make(chan frame, 512), tr: t}
	p.mu.Lock()
	p.conns = append(p.conns, w)
	p.mu.Unlock()
	t.wg.Add(2)
	go w.writeLoop(&t.wg)
	go t.readLoop(w, id)
	return w
}

// accept admits inbound connections: the dialer's hello names it, we
// hello back, and the connection joins that peer's pool.
func (t *Transport) accept() {
	defer t.wg.Done()
	for {
		c, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		go func(c net.Conn) {
			// Unbuffered for the same reason as Dial: nothing past the
			// hello may be consumed here.
			h, err := readFrame(c, &t.bytesRecv)
			if err != nil || h.Kind != kindHello || h.From == "" {
				c.Close()
				return
			}
			back := frame{Kind: kindHello, From: string(t.self), Addr: t.Addr()}
			if err := writeFrame(c, &back, &t.bytesSent); err != nil {
				c.Close()
				return
			}
			t.addConn(parcel.NodeID(h.From), c)
		}(c)
	}
}

// readLoop drains one connection: replies resolve pending calls
// inline (so a reply is never stuck behind handler work — the pool's
// deadlock guard), everything else dispatches to the method handler
// through the bounded worker pool so a blocking handler never stalls
// the wire and a frame burst never explodes the goroutine count.
func (t *Transport) readLoop(w *wconn, from parcel.NodeID) {
	defer t.wg.Done()
	br := bufio.NewReader(w.c)
	for {
		f, err := readFrame(br, &t.bytesRecv)
		if err != nil {
			w.shut()
			t.failPending(w)
			return
		}
		switch f.Kind {
		case kindReply:
			if pc, ok := t.pending.LoadAndDelete(f.Seq); ok {
				pc.(pendingCall).ch <- f
			}
		case kindSend:
			t.parcelsRecv.Add(1)
			if h, ok := t.handler(f.Method); ok {
				body := f.Body
				t.dispatch(func() { _, _ = h(from, body) })
			}
		case kindCall:
			t.parcelsRecv.Add(1)
			h, ok := t.handler(f.Method)
			seq, body := f.Seq, f.Body
			t.dispatch(func() {
				rep := frame{Kind: kindReply, Seq: seq}
				if !ok {
					rep.Err = fmt.Sprintf("netparcel: node %s has no handler %q", t.self, f.Method)
				} else if v, err := h(from, body); err != nil {
					rep.Err = err.Error()
				} else {
					rep.Body = v
				}
				w.enqueue(rep)
			})
		}
	}
}

// dispatch queues one handler invocation for the bounded worker pool,
// growing the pool lazily up to Config.Window workers. Queueing never
// blocks the read loop — a handler that Calls back over the same
// connection depends on that loop staying live for its reply.
func (t *Transport) dispatch(fn htask) {
	t.hmu.Lock()
	t.hqueue = append(t.hqueue, fn)
	if t.hworkers < t.cfg.Window {
		t.hworkers++
		go t.handlerWorker()
	}
	t.hmu.Unlock()
}

// handlerWorker drains queued handler invocations and exits when the
// queue goes dry, so an idle transport holds no pool goroutines.
func (t *Transport) handlerWorker() {
	for {
		t.hmu.Lock()
		if len(t.hqueue) == 0 {
			t.hworkers--
			t.hmu.Unlock()
			return
		}
		fn := t.hqueue[0]
		t.hqueue = t.hqueue[1:]
		t.hmu.Unlock()
		fn()
	}
}

// peerFor returns the connected peer or an error; it never dials — the
// cluster membership layer owns who is reachable.
func (t *Transport) peerFor(dest parcel.NodeID) (*peer, error) {
	if t.closed.Load() {
		return nil, errClosed
	}
	t.mu.RLock()
	p, ok := t.peers[dest]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", parcel.ErrUnknownPeer, dest)
	}
	return p, nil
}

// pick round-robins the pool, pruning dead connections.
func (p *peer) pick() (*wconn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.conns) > 0 {
		i := int(p.next.Add(1)) % len(p.conns)
		w := p.conns[i]
		if !w.closed.Load() {
			return w, nil
		}
		p.conns = append(p.conns[:i], p.conns[i+1:]...)
	}
	return nil, fmt.Errorf("%w: %s (no live connections)", parcel.ErrUnknownPeer, p.id)
}

// InjectFaults attaches a fault injector consulted before every Send
// and Call (nil detaches) — the same surface parcel.Fabric.Inject gives
// in-process scenarios, so chaos runs on real sockets too.
func (t *Transport) InjectFaults(f *parcel.Faults) { t.faults.Store(f) }

// Send delivers a one-way parcel. Injected faults apply: a partition or
// crash fails the send, a drop loses it silently, a delay postpones the
// enqueue.
func (t *Transport) Send(dest parcel.NodeID, method string, body []byte) error {
	p, err := t.peerFor(dest)
	if err != nil {
		return err
	}
	if fl := t.faults.Load(); fl != nil {
		if fl.Blocked(t.self, dest) {
			return fmt.Errorf("%w: %s", parcel.ErrPartitioned, dest)
		}
		if fl.DropSend() {
			return nil
		}
		if d := fl.SendDelay(); d > 0 {
			t.parcelsSent.Add(1)
			time.AfterFunc(d, func() {
				if w, err := p.pick(); err == nil {
					_ = w.enqueue(frame{Kind: kindSend, Method: method, Body: body})
				}
			})
			return nil
		}
	}
	w, err := p.pick()
	if err != nil {
		return err
	}
	t.parcelsSent.Add(1)
	return w.enqueue(frame{Kind: kindSend, Method: method, Body: body})
}

// Call performs a split transaction: the frame ships to dest, the
// matching reply (or the handler's error) comes back. Outstanding calls
// to one peer are bounded by the window; callers beyond it block until a
// slot frees, which is the transport's backpressure.
func (t *Transport) Call(dest parcel.NodeID, method string, body []byte) ([]byte, error) {
	p, err := t.peerFor(dest)
	if err != nil {
		return nil, err
	}
	if fl := t.faults.Load(); fl.Blocked(t.self, dest) {
		return nil, fmt.Errorf("%w: %s", parcel.ErrPartitioned, dest)
	}
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	w, err := p.pick()
	if err != nil {
		return nil, err
	}
	seq := t.seq.Add(1)
	ch := make(chan frame, 1)
	t.pending.Store(seq, pendingCall{w: w, ch: ch})
	t.parcelsSent.Add(1)
	t.calls.Add(1)
	if err := w.enqueue(frame{Kind: kindCall, Seq: seq, Method: method, Body: body}); err != nil {
		t.pending.Delete(seq)
		return nil, err
	}
	select {
	case f := <-ch:
		if f.Err != "" {
			return nil, errors.New(f.Err)
		}
		return f.Body, nil
	case <-time.After(t.cfg.CallTimeout):
		t.pending.Delete(seq)
		return nil, fmt.Errorf("netparcel: call %s to %s timed out after %v", method, dest, t.cfg.CallTimeout)
	}
}

// Peers lists the currently connected peers.
func (t *Transport) Peers() []parcel.NodeID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	ids := make([]parcel.NodeID, 0, len(t.peers))
	for id := range t.peers {
		ids = append(ids, id)
	}
	return ids
}

// Stats snapshots the wire counters. BytesSent/BytesRecv count real
// framed bytes, length prefixes included.
func (t *Transport) Stats() parcel.TransportStats {
	return parcel.TransportStats{
		BytesSent:   t.bytesSent.Load(),
		BytesRecv:   t.bytesRecv.Load(),
		ParcelsSent: t.parcelsSent.Load(),
		ParcelsRecv: t.parcelsRecv.Load(),
		Calls:       t.calls.Load(),
	}
}

// failPending fails outstanding calls stranded on a dead connection
// (or, with a nil w, all of them) so callers unblock immediately
// instead of riding out the call timeout. LoadAndDelete makes each
// entry single-winner against a racing reply.
func (t *Transport) failPending(w *wconn) {
	t.pending.Range(func(k, v any) bool {
		pc := v.(pendingCall)
		if w != nil && pc.w != w {
			return true
		}
		if _, ok := t.pending.LoadAndDelete(k); ok {
			pc.ch <- frame{Kind: kindReply, Err: errClosed.Error()}
		}
		return true
	})
}

// Close shuts the listener and every pooled connection, fails every
// outstanding call, and waits for the reader/writer goroutines to
// drain.
func (t *Transport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	t.ln.Close()
	t.mu.Lock()
	for _, p := range t.peers {
		p.mu.Lock()
		for _, w := range p.conns {
			w.shut()
		}
		p.mu.Unlock()
	}
	t.mu.Unlock()
	t.failPending(nil)
	t.wg.Wait()
	return nil
}

// enqueue queues one frame for the coalescing writer.
func (w *wconn) enqueue(f frame) (err error) {
	if w.closed.Load() {
		return errClosed
	}
	// shut() may close the queue between the check and the send; the
	// recovered panic is the close signal.
	defer func() {
		if recover() != nil {
			err = errClosed
		}
	}()
	w.out <- f
	return nil
}

// shut closes the connection and its queue exactly once.
func (w *wconn) shut() {
	if w.closed.Swap(true) {
		return
	}
	w.c.Close()
	close(w.out)
}

// writeLoop is the coalescing writer: it encodes every frame pending on
// the queue into the buffered writer and flushes once when the queue
// goes empty — N queued frames, one flush.
func (w *wconn) writeLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	bw := bufio.NewWriter(w.c)
	var scratch bytes.Buffer
	write := func(f frame) bool {
		scratch.Reset()
		if err := gob.NewEncoder(&scratch).Encode(f); err != nil {
			return false
		}
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(scratch.Len()))
		if _, err := bw.Write(hdr[:]); err != nil {
			return false
		}
		if _, err := bw.Write(scratch.Bytes()); err != nil {
			return false
		}
		w.tr.bytesSent.Add(int64(4 + scratch.Len()))
		return true
	}
	for f := range w.out {
		if !write(f) {
			w.shut()
			for range w.out { // drain so enqueuers don't block
			}
			return
		}
	coalesce:
		for {
			select {
			case f2, ok := <-w.out:
				if !ok {
					bw.Flush()
					return
				}
				if !write(f2) {
					w.shut()
					for range w.out {
					}
					return
				}
			default:
				break coalesce
			}
		}
		if err := bw.Flush(); err != nil {
			w.shut()
			for range w.out {
			}
			return
		}
	}
	bw.Flush()
}

// writeFrame writes one length-prefixed frame directly (hello path,
// before the coalescing writer exists).
func writeFrame(c net.Conn, f *frame, sent *atomic.Int64) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(*f); err != nil {
		return err
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := c.Write(buf.Bytes())
	sent.Add(int64(4 + buf.Len()))
	return err
}

// maxFrame bounds one frame body: a corrupt length prefix must not
// allocate gigabytes.
const maxFrame = 64 << 20

// readFrame reads one length-prefixed frame.
func readFrame(r io.Reader, recv *atomic.Int64) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return frame{}, fmt.Errorf("netparcel: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return frame{}, err
	}
	recv.Add(int64(4 + n))
	var f frame
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(&f); err != nil {
		return frame{}, err
	}
	return f, nil
}
