package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/parcel"
	"repro/internal/serve"
	"repro/internal/trace"
)

// This file threads SubmitFlow across machines. A cluster Pipeline
// compiles twice on every node: the full serve pipeline (what a locally
// originated flow runs on, chained by the serve layer with this Node as
// its RemoteRouter) and one single-stage serve pipeline per stage (what
// a stage parcel executes when the flow arrives from another node).
// Hand-offs are stage parcels; the flow then chains machine-to-machine
// — each executing node advances the flow itself, forwarding to the
// next stage's owner or running it locally — and the terminal result
// returns to the origin as one completion parcel. Done-exactly-once
// holds by construction: the completion pops the origin's pending entry
// under a lock (at most one winner), and the serve layer's flowState
// guard backs the locally-chained case.

// StageRoute derives one stage's cluster routing from its input value:
// the key that mixes onto the global locale space (the ring then names
// the owning node) and the names of the tenant globals the stage reads
// (the executing node percolates them before running). A nil route
// inherits the flow's submission key and reads no globals.
type StageRoute func(v any) (key uint64, globals []string)

// PipelineConfig declares one cluster pipeline.
type PipelineConfig struct {
	Name string
	// Stages are the serve-layer stage declarations, exactly as for
	// Tenant.NewPipeline.
	Stages []serve.Stage
	// Routes gives each stage its cluster routing; nil entries (or a nil
	// slice) inherit the flow key. Length must be 0 or len(Stages).
	Routes []StageRoute
}

// Pipeline is a compiled cluster pipeline: immutable, safe for
// concurrent submissions. Build the same pipeline (same tenant, name,
// stages) on every node.
type Pipeline struct {
	n          *Node
	t          *Tenant
	name       string
	sp         *serve.Pipeline   // full pipeline: locally admitted flows
	stagePipes []*serve.Pipeline // one per stage: remote stage execution
	routes     []StageRoute
}

// NewPipeline compiles a cluster pipeline for the tenant. Alongside the
// full serve pipeline it registers one single-stage pipeline per stage
// (named "<name>.s<i>"), the execution vehicle for arriving stage
// parcels — each runs the stage under the node's own admission,
// batching, and adaptivity exactly like local work.
func (t *Tenant) NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	if len(cfg.Routes) != 0 && len(cfg.Routes) != len(cfg.Stages) {
		return nil, fmt.Errorf("cluster: pipeline %q has %d stages but %d routes",
			cfg.Name, len(cfg.Stages), len(cfg.Routes))
	}
	sp, err := t.st.NewPipeline(cfg.Name, cfg.Stages...)
	if err != nil {
		return nil, err
	}
	p := &Pipeline{n: t.n, t: t, name: cfg.Name, sp: sp}
	for i, st := range cfg.Stages {
		solo, err := t.st.NewPipeline(fmt.Sprintf("%s.s%d", cfg.Name, i), st)
		if err != nil {
			return nil, err
		}
		p.stagePipes = append(p.stagePipes, solo)
	}
	if len(cfg.Routes) > 0 {
		p.routes = append([]StageRoute(nil), cfg.Routes...)
	}
	t.n.tenantsMu.Lock()
	t.n.pipes[t.name+"/"+cfg.Name] = p
	t.n.tenantsMu.Unlock()
	return p, nil
}

// Name returns the pipeline's registered name.
func (p *Pipeline) Name() string { return p.name }

// Len returns the number of stages.
func (p *Pipeline) Len() int { return p.sp.Len() }

// route derives one stage's cluster routing inputs.
func (p *Pipeline) route(stage int, v any, flowKey uint64) (uint64, []string) {
	if stage < len(p.routes) && p.routes[stage] != nil {
		return p.routes[stage](v)
	}
	return flowKey, nil
}

// pipeline looks a compiled cluster pipeline up by tenant and name.
func (n *Node) pipeline(tenant, name string) *Pipeline {
	n.tenantsMu.RLock()
	defer n.tenantsMu.RUnlock()
	return n.pipes[tenant+"/"+name]
}

// Ticket follows one cluster flow to its terminal result.
type Ticket struct {
	ch   chan serve.Result
	once sync.Once
	r    serve.Result
}

// Wait blocks until the flow resolves (idempotent).
func (tk *Ticket) Wait() serve.Result {
	tk.once.Do(func() { tk.r = <-tk.ch })
	return tk.r
}

// Submit admits one flow into the cluster and returns its ticket.
func (p *Pipeline) Submit(req serve.Request) (*Ticket, error) {
	tk := &Ticket{ch: make(chan serve.Result, 1)}
	if err := p.SubmitFunc(req, func(r serve.Result) { tk.ch <- r }); err != nil {
		return nil, err
	}
	return tk, nil
}

// pendingFlow is the origin-side record of one shipped flow: the finish
// callback a completion resolves, plus everything recovery needs to
// re-route the flow if its executor dies — the last stage parcel (value
// retained), the decoded stage input for re-keying, the destination it
// was shipped to, and the recovery timer. epoch is the current
// FlowEpoch; completions carrying an older epoch are zombies' and drop.
type pendingFlow struct {
	fin      func(serve.Result)
	p        *Pipeline
	msg      stageMsg // last parcel this origin shipped (Value retained)
	v        any      // decoded stage input, for route re-keying
	dest     parcel.NodeID
	epoch    uint32
	attempts int
	deadline time.Time // the flow's own deadline; zero = none
	timer    *time.Timer
}

// SubmitFunc admits one flow, invoking done exactly once with the
// terminal result. Admission itself is ring-routed: when stage 0's home
// locale belongs to another node, the whole flow ships there as a stage
// parcel instead of admitting locally, and done fires when the
// completion parcel returns.
func (p *Pipeline) SubmitFunc(req serve.Request, done func(serve.Result)) error {
	n := p.n
	if n.closed.Load() {
		return ErrNodeClosed
	}
	finish := func(r serve.Result) {
		n.flowsCompleted.Add(1)
		done(r)
	}
	key0, _ := p.route(0, req.Payload, req.Key)
	if owner, _ := n.ownerOf(p.t.hash, key0); owner != n.self {
		if n.shipStage(p, owner, stageMsg{
			Origin:   string(n.self),
			Tenant:   p.t.name,
			Pipe:     p.name,
			Stage:    0,
			Key:      req.Key,
			Deadline: deadlineNS(req.Deadline),
			Priority: req.Priority,
		}, req.Payload, finish) {
			n.flowsOriginated.Add(1)
			return nil
		}
		// Could not ship (encode failure, peer just left): admit locally.
	}
	if _, err := p.t.st.SubmitFlowFunc(p.sp, req, finish); err != nil {
		return err
	}
	n.flowsOriginated.Add(1)
	return nil
}

// shipStage encodes and sends one stage parcel carrying a flow this
// node originates, registering its finish callback under a fresh flow
// id and arming the recovery timer that guarantees the flow resolves
// even if the destination dies. Returns false (nothing registered,
// nothing sent) when the value cannot cross the wire or the peer is
// unreachable.
func (n *Node) shipStage(p *Pipeline, dest parcel.NodeID, sp stageMsg, v any, finish func(serve.Result)) bool {
	body, err := encodeValue(v)
	if err != nil {
		return false
	}
	sp.Value = body
	flow := n.nextFlow.Add(1)
	sp.Flow = flow
	pb, err := encode(sp)
	if err != nil {
		return false
	}
	pf := &pendingFlow{fin: finish, p: p, msg: sp, v: v, dest: dest, deadline: nsTime(sp.Deadline)}
	n.pendingMu.Lock()
	n.pending[flow] = pf
	if d := n.recoverDelay(pf.deadline); d > 0 {
		pf.timer = time.AfterFunc(d, func() { n.recoverFlow(flow) })
	}
	n.pendingMu.Unlock()
	if err := n.t.Send(dest, "cluster.stage", pb); err != nil {
		n.pendingMu.Lock()
		if cur := n.pending[flow]; cur == pf {
			delete(n.pending, flow)
			if pf.timer != nil {
				pf.timer.Stop()
			}
		}
		n.pendingMu.Unlock()
		return false
	}
	n.forwardedStages.Add(1)
	n.traces.record(n.self, flow, trace.KindRemoteHop,
		fmt.Sprintf("%s/%s stage %d: %s -> %s", sp.Tenant, sp.Pipe, sp.Stage, n.self, dest))
	return true
}

// recoverDelay is how long the origin waits for a shipped flow before
// suspecting its executor: the configured FlowTimeout, clipped to the
// flow's own deadline so a deadlined flow is resolved (not merely
// retried) the moment it can no longer make it. 0 means recovery is
// disabled.
func (n *Node) recoverDelay(deadline time.Time) time.Duration {
	d := n.recCfg.FlowTimeout
	if d <= 0 {
		return 0
	}
	if !deadline.IsZero() {
		if until := deadline.Sub(n.now()); until < d {
			d = until
		}
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// recoverFlow is the recovery timer's body — the reason no Ticket.Wait
// ever blocks forever. It inspects one still-pending flow: past its
// deadline it resolves StatusShed; out of attempts it resolves
// StatusFailed; otherwise it bumps the flow epoch (so any completion
// from the previous attempt's executor — alive or zombie — is dropped
// as stale), re-routes the retained stage parcel by the current ring,
// and re-arms the timer. The flow may execute more than once; the epoch
// gate keeps its resolution exactly-once.
func (n *Node) recoverFlow(flow uint64) {
	n.pendingMu.Lock()
	pf := n.pending[flow]
	if pf == nil {
		n.pendingMu.Unlock()
		return
	}
	if !pf.deadline.IsZero() && n.now().After(pf.deadline) {
		delete(n.pending, flow)
		n.pendingMu.Unlock()
		n.recoveredFlows.Add(1)
		n.traces.record(n.self, flow, trace.KindAdapt, "recovery: flow deadline passed, shed")
		pf.fin(serve.Result{Status: serve.StatusShed,
			Err: fmt.Errorf("cluster: flow %d missed its deadline during recovery from %s", flow, pf.dest)})
		return
	}
	if pf.attempts >= n.recCfg.MaxAttempts {
		delete(n.pending, flow)
		n.pendingMu.Unlock()
		n.recoveredFlows.Add(1)
		pf.fin(serve.Result{Status: serve.StatusFailed,
			Err: fmt.Errorf("cluster: flow %d unresolved after %d recovery attempts (last executor %s)",
				flow, pf.attempts, pf.dest)})
		return
	}
	pf.attempts++
	pf.epoch++
	attempt := pf.attempts
	sp := pf.msg
	sp.FlowEpoch = pf.epoch
	pf.msg = sp
	p, v := pf.p, pf.v
	skey, _ := p.route(sp.Stage, v, sp.Key)
	owner, _ := n.ownerOf(p.t.hash, skey)
	pf.dest = owner
	if d := n.recoverDelay(pf.deadline); d > 0 {
		pf.timer = time.AfterFunc(d, func() { n.recoverFlow(flow) })
	}
	n.pendingMu.Unlock()
	n.recoveredFlows.Add(1)
	n.traces.record(n.self, flow, trace.KindAdapt,
		fmt.Sprintf("recovery: attempt %d re-routes stage %d to %s (epoch %d)", attempt, sp.Stage, owner, sp.FlowEpoch))
	if owner != n.self {
		if pb, err := encode(sp); err == nil && n.t.Send(owner, "cluster.stage", pb) == nil {
			n.forwardedStages.Add(1)
			return
		}
		// The new owner is unreachable too: run the stage here rather than
		// burning the remaining attempts against a dead wire.
	}
	n.execStage(p, sp, v)
}

// ForwardStage implements serve.RemoteRouter: the serve layer consults
// it at every scalar stage boundary of a locally executing flow. When
// the ring homes the next stage on another node, the remainder of the
// flow ships there and the serve layer's remaining futures resolve via
// finish when the completion parcel returns.
func (n *Node) ForwardStage(st *serve.Tenant, sp *serve.Pipeline, next int, v any,
	key uint64, deadline time.Time, priority int, finish func(serve.Result)) bool {
	if n.closed.Load() {
		return false
	}
	p := n.pipeline(st.Name(), sp.Name())
	if p == nil {
		return false // not a cluster pipeline (solo submits, stage pipes)
	}
	skey, _ := p.route(next, v, key)
	owner, _ := n.ownerOf(p.t.hash, skey)
	if owner == n.self {
		return false
	}
	return n.shipStage(p, owner, stageMsg{
		Origin:   string(n.self),
		Tenant:   p.t.name,
		Pipe:     p.name,
		Stage:    next,
		Key:      key,
		Deadline: deadlineNS(deadline),
		Priority: priority,
	}, v, finish)
}

// handleStage executes one arriving stage parcel. It runs on a
// transport delivery goroutine; the stage itself is admitted through
// the node's serve layer like any local work.
func (n *Node) handleStage(_ parcel.NodeID, body []byte) ([]byte, error) {
	var sp stageMsg
	if err := decode(body, &sp); err != nil {
		return nil, err
	}
	origin := parcel.NodeID(sp.Origin)
	p := n.pipeline(sp.Tenant, sp.Pipe)
	if p == nil || sp.Stage < 0 || sp.Stage >= p.Len() {
		n.completeFlow(origin, sp.Flow, sp.FlowEpoch, serve.Result{Status: serve.StatusFailed,
			Err: fmt.Errorf("cluster: node %s has no pipeline %s/%s (stage %d)",
				n.self, sp.Tenant, sp.Pipe, sp.Stage)})
		return nil, nil
	}
	v, err := decodeValue(sp.Value)
	if err != nil {
		n.completeFlow(origin, sp.Flow, sp.FlowEpoch, serve.Result{Status: serve.StatusFailed,
			Err: fmt.Errorf("cluster: stage %d value: %w", sp.Stage, err)})
		return nil, nil
	}
	n.execStage(p, sp, v)
	return nil, nil
}

// execStage runs stage sp.Stage of a forwarded flow on this node:
// deadline check (against the node's own clock, so harnesses that
// inject one steer shedding deterministically), percolation, then the
// single-stage pipeline under local admission. Its completion advances
// the flow.
func (n *Node) execStage(p *Pipeline, sp stageMsg, v any) {
	origin := parcel.NodeID(sp.Origin)
	deadline := nsTime(sp.Deadline)
	if !deadline.IsZero() {
		if now := n.now(); now.After(deadline) {
			n.completeFlow(origin, sp.Flow, sp.FlowEpoch, serve.Result{Status: serve.StatusShed})
			return
		}
	}
	if origin != n.self {
		n.remoteStages.Add(1)
	} else {
		n.localStages.Add(1)
	}
	_, globals := p.route(sp.Stage, v, sp.Key)
	p.t.ensureResident(origin, globals)
	n.traces.record(origin, sp.Flow, trace.KindDispatch,
		fmt.Sprintf("%s/%s stage %d @ %s", sp.Tenant, sp.Pipe, sp.Stage, n.self))
	req := serve.Request{Key: sp.Key, Payload: v, Deadline: deadline, Priority: sp.Priority}
	_, err := p.t.st.SubmitFlowFunc(p.stagePipes[sp.Stage], req, func(r serve.Result) {
		n.advance(p, sp, r)
	})
	if err != nil {
		n.completeFlow(origin, sp.Flow, sp.FlowEpoch, serve.Result{Status: serve.StatusRejected, Err: err})
	}
}

// advance moves a forwarded flow past a finished stage: a terminal
// result (non-OK, or the last stage) completes back to the origin;
// otherwise the next stage routes by the current ring — executing here
// or shipping onward, so a flow chains machine-to-machine without ever
// revisiting its origin mid-flight.
func (n *Node) advance(p *Pipeline, sp stageMsg, r serve.Result) {
	origin := parcel.NodeID(sp.Origin)
	if r.Status != serve.StatusOK || sp.Stage >= p.Len()-1 {
		n.completeFlow(origin, sp.Flow, sp.FlowEpoch, r)
		return
	}
	next := sp.Stage + 1
	key, _ := p.route(next, r.Value, sp.Key)
	owner, _ := n.ownerOf(p.t.hash, key)
	sp.Stage = next
	if owner != n.self {
		body, err := encodeValue(r.Value)
		if err != nil {
			n.completeFlow(origin, sp.Flow, sp.FlowEpoch, serve.Result{Status: serve.StatusFailed,
				Err: fmt.Errorf("cluster: stage %d value does not encode: %w (see RegisterType)", next, err)})
			return
		}
		sp.Value = body
		if pb, err := encode(sp); err == nil && n.t.Send(owner, "cluster.stage", pb) == nil {
			n.forwardedStages.Add(1)
			n.traces.record(origin, sp.Flow, trace.KindRemoteHop,
				fmt.Sprintf("%s/%s stage %d: %s -> %s", sp.Tenant, sp.Pipe, next, n.self, owner))
			return
		}
		// The owner became unreachable (left, crashed): degrade to local
		// execution rather than losing the flow.
	}
	sp.Value = nil
	n.execStage(p, sp, r.Value)
}

// completeFlow returns a forwarded flow's terminal result to its
// origin — directly when the flow ended where it began, else as a
// completion parcel. epoch travels with the result: the origin only
// accepts completions for the attempt it currently has in flight.
func (n *Node) completeFlow(origin parcel.NodeID, flow uint64, epoch uint32, r serve.Result) {
	if origin == n.self {
		n.finishFlow(flow, epoch, r)
		return
	}
	cm := completeMsg{Flow: flow, FlowEpoch: epoch, Status: uint8(r.Status)}
	if r.Err != nil {
		cm.Err = r.Err.Error()
	}
	if r.Status == serve.StatusOK && r.Value != nil {
		body, err := encodeValue(r.Value)
		if err != nil {
			cm.Status = uint8(serve.StatusFailed)
			cm.Err = fmt.Sprintf("cluster: result value does not encode: %v (see RegisterType)", err)
		} else {
			cm.Value = body
		}
	}
	body, err := encode(cm)
	if err != nil {
		return
	}
	// A send failure means the origin is gone; its pending entry resolves
	// at its own Close.
	_ = n.t.Send(origin, "cluster.complete", body)
}

// handleComplete resolves a completion parcel at the flow's origin.
// The status byte is wire input and is range-checked before it becomes
// a serve.Status: a corrupt or out-of-range byte resolves the flow
// StatusFailed with a descriptive error instead of minting a status the
// serve layer does not define.
func (n *Node) handleComplete(from parcel.NodeID, body []byte) ([]byte, error) {
	var cm completeMsg
	if err := decode(body, &cm); err != nil {
		return nil, err
	}
	var r serve.Result
	if cm.Status > uint8(serve.StatusFailed) {
		r = serve.Result{Status: serve.StatusFailed,
			Err: fmt.Errorf("cluster: completion from %s carried invalid status byte %d (max %d)",
				from, cm.Status, uint8(serve.StatusFailed))}
	} else {
		r = serve.Result{Status: serve.Status(cm.Status)}
		if cm.Err != "" {
			r.Err = errors.New(cm.Err)
		}
		if len(cm.Value) > 0 {
			v, err := decodeValue(cm.Value)
			if err != nil {
				r.Status = serve.StatusFailed
				r.Err = fmt.Errorf("cluster: completion value: %w", err)
			} else {
				r.Value = v
			}
		}
	}
	n.traces.record(n.self, cm.Flow, trace.KindComplete,
		fmt.Sprintf("completion from %s: %s", from, r.Status))
	n.finishFlow(cm.Flow, cm.FlowEpoch, r)
	return nil, nil
}

// finishFlow pops the flow's pending finish callback and fires it —
// the pop is the exactly-once gate: a duplicate or late completion
// finds no entry and is dropped. The epoch comparison extends the gate
// across recovery: a completion from an attempt the origin has already
// re-routed past (a zombie executor finishing after its eviction) finds
// the entry at a newer epoch and is dropped the same way.
func (n *Node) finishFlow(flow uint64, epoch uint32, r serve.Result) {
	n.pendingMu.Lock()
	pf := n.pending[flow]
	if pf != nil && pf.epoch != epoch {
		n.pendingMu.Unlock()
		n.staleCompletions.Add(1)
		return
	}
	delete(n.pending, flow)
	if pf != nil && pf.timer != nil {
		pf.timer.Stop()
	}
	n.pendingMu.Unlock()
	if pf != nil {
		pf.fin(r)
	}
}

// deadlineNS packs a deadline for the wire; zero time is 0.
func deadlineNS(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// nsTime unpacks a wire deadline; 0 is the zero time.
func nsTime(ns int64) time.Time {
	if ns == 0 {
		return time.Time{}
	}
	return time.Unix(0, ns)
}
