package cluster

import (
	"sync"
	"time"

	"repro/internal/parcel"
	"repro/internal/trace"
)

// This file stitches flow traces across nodes. The serve layer's
// FlowTrace (PR 6) records a flow's lifecycle inside one process; once
// flows hop machines, each node additionally records the cross-node
// edges it sees — hand-offs shipped, stages executed, completions
// received — keyed by (origin, flow id). StitchFlow asks every member
// for its record of one flow and merges them into the deterministic
// total order of trace.Before, so "where did this flow actually run?"
// has a cluster-wide answer.

// maxFlowTraces bounds how many flows one node retains records for;
// the oldest record is evicted when a new flow arrives at the cap.
const maxFlowTraces = 1024

// maxTraceEvents bounds one flow's record.
const maxTraceEvents = 256

type traceKey struct {
	origin parcel.NodeID
	flow   uint64
}

type flowRec struct {
	events []trace.Event
	seq    uint64
}

// flowTraces is one node's bounded per-flow event store. A nil
// *flowTraces (TraceFlows off) drops everything at one pointer check.
type flowTraces struct {
	producer int // stable per-node producer id for merge tie-breaks

	mu    sync.Mutex
	recs  map[traceKey]*flowRec
	order []traceKey // FIFO eviction
}

func newFlowTraces(self parcel.NodeID) *flowTraces {
	return &flowTraces{
		producer: int(fnv64(string(self)) % (1 << 30)),
		recs:     make(map[traceKey]*flowRec),
	}
}

// record appends one cross-node event to the flow's record.
func (ft *flowTraces) record(origin parcel.NodeID, flow uint64, kind trace.Kind, label string) {
	if ft == nil {
		return
	}
	now := time.Now().UnixNano()
	key := traceKey{origin: origin, flow: flow}
	ft.mu.Lock()
	rec, ok := ft.recs[key]
	if !ok {
		if len(ft.order) >= maxFlowTraces {
			oldest := ft.order[0]
			ft.order = ft.order[1:]
			delete(ft.recs, oldest)
		}
		rec = &flowRec{}
		ft.recs[key] = rec
		ft.order = append(ft.order, key)
	}
	if len(rec.events) < maxTraceEvents {
		rec.events = append(rec.events, trace.Event{
			Time: now, Kind: kind, Producer: ft.producer, Seq: rec.seq, Label: label,
		})
		rec.seq++
	}
	ft.mu.Unlock()
}

// snapshot copies one flow's events.
func (ft *flowTraces) snapshot(origin parcel.NodeID, flow uint64) []trace.Event {
	if ft == nil {
		return nil
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	rec, ok := ft.recs[traceKey{origin: origin, flow: flow}]
	if !ok {
		return nil
	}
	return append([]trace.Event(nil), rec.events...)
}

// TracedFlows lists the flow ids this node originated and holds
// cross-node records for, oldest first — the entry points StitchFlow
// takes (empty unless Config.TraceFlows is on).
func (n *Node) TracedFlows() []uint64 {
	ft := n.traces
	if ft == nil {
		return nil
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	var out []uint64
	for _, key := range ft.order {
		if key.origin == n.self {
			out = append(out, key.flow)
		}
	}
	return out
}

// FlowEvents returns this node's recorded cross-node events for one
// flow (empty unless Config.TraceFlows is on).
func (n *Node) FlowEvents(origin parcel.NodeID, flow uint64) []trace.Event {
	return n.traces.snapshot(origin, flow)
}

// StitchFlow collects every member's record of a flow this node
// originated and merges them into one deterministic timeline.
// Unreachable members contribute nothing.
func (n *Node) StitchFlow(flow uint64) []trace.Event {
	streams := [][]trace.Event{n.traces.snapshot(n.self, flow)}
	req, err := encode(traceMsg{Origin: string(n.self), Flow: flow})
	if err != nil {
		return trace.Merge(streams...)
	}
	for _, id := range n.Members() {
		if id == n.self {
			continue
		}
		reply, err := n.t.Call(id, "cluster.trace", req)
		if err != nil {
			continue
		}
		var evs []trace.Event
		if decode(reply, &evs) == nil && len(evs) > 0 {
			streams = append(streams, evs)
		}
	}
	return trace.Merge(streams...)
}

// handleTrace serves this node's record of one flow to a stitching
// peer.
func (n *Node) handleTrace(_ parcel.NodeID, body []byte) ([]byte, error) {
	var tm traceMsg
	if err := decode(body, &tm); err != nil {
		return nil, err
	}
	return encode(n.traces.snapshot(parcel.NodeID(tm.Origin), tm.Flow))
}
