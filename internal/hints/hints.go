// Package hints implements the structured-hints system of Section 4.1:
// the bridge between domain experts and the HTVM system software. A
// hint names a target stage (adaptive compiler, runtime, or monitoring
// system), a category (the paper's four: data locality, monitoring
// priorities, data access patterns, computation patterns), a priority,
// free-form parameters, and conditional rules that adjust those
// parameters from runtime facts. Hints live in the Program/Execution
// Knowledge Database together with the facts the monitor reports, and
// the compiler/runtime query the database for the effective parameter
// set at each decision point.
package hints

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Target is the execution-model stage a hint addresses.
type Target string

// Hint targets.
const (
	TargetCompiler Target = "compiler"
	TargetRuntime  Target = "runtime"
	TargetMonitor  Target = "monitor"
)

// Category classifies what the hint is about (Section 4.1 lists these
// four as the issues hints must address "in a general way").
type Category string

// Hint categories.
const (
	CatLocality    Category = "locality"
	CatMonitoring  Category = "monitoring"
	CatAccess      Category = "access-pattern"
	CatComputation Category = "computation-pattern"
)

func validTarget(t Target) bool {
	return t == TargetCompiler || t == TargetRuntime || t == TargetMonitor
}

func validCategory(c Category) bool {
	switch c {
	case CatLocality, CatMonitoring, CatAccess, CatComputation:
		return true
	}
	return false
}

// Op is a comparison operator in a rule condition.
type Op string

// Rule operators.
const (
	OpLT Op = "<"
	OpGT Op = ">"
	OpLE Op = "<="
	OpGE Op = ">="
	OpEQ Op = "=="
)

// Rule is a conditional parameter override: when the named fact
// satisfies the comparison, the parameter takes the given value.
type Rule struct {
	Fact  string
	Op    Op
	Value float64
	Key   string
	Set   string
}

// eval applies the rule against a fact value.
func (r Rule) eval(v float64) bool {
	switch r.Op {
	case OpLT:
		return v < r.Value
	case OpGT:
		return v > r.Value
	case OpLE:
		return v <= r.Value
	case OpGE:
		return v >= r.Value
	case OpEQ:
		return v == r.Value
	}
	return false
}

// Hint is one structured hint.
type Hint struct {
	Name     string
	Target   Target
	Category Category
	Priority int // higher wins on parameter conflicts
	Params   map[string]string
	Rules    []Rule
}

// Validate checks hint well-formedness.
func (h *Hint) Validate() error {
	if h.Name == "" {
		return fmt.Errorf("hints: hint with empty name")
	}
	if !validTarget(h.Target) {
		return fmt.Errorf("hints: hint %q has invalid target %q", h.Name, h.Target)
	}
	if !validCategory(h.Category) {
		return fmt.Errorf("hints: hint %q has invalid category %q", h.Name, h.Category)
	}
	if h.Priority < 0 || h.Priority > 100 {
		return fmt.Errorf("hints: hint %q priority %d outside [0,100]", h.Name, h.Priority)
	}
	for _, r := range h.Rules {
		if r.Fact == "" || r.Key == "" {
			return fmt.Errorf("hints: hint %q has malformed rule", h.Name)
		}
	}
	return nil
}

// DB is the Program/Execution Knowledge Database: hints from the domain
// expert plus facts from the runtime monitor. Safe for concurrent use.
type DB struct {
	mu    sync.RWMutex
	hints map[string]*Hint
	facts map[string]float64
}

// NewDB returns an empty knowledge database.
func NewDB() *DB {
	return &DB{hints: make(map[string]*Hint), facts: make(map[string]float64)}
}

// AddHint validates and stores a hint (replacing a same-named one).
func (db *DB) AddHint(h *Hint) error {
	if err := h.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	db.hints[h.Name] = h
	db.mu.Unlock()
	return nil
}

// Hint returns the named hint, if present.
func (db *DB) Hint(name string) (*Hint, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	h, ok := db.hints[name]
	return h, ok
}

// SetFact records a runtime fact (monitor observations, static facts
// from scripts).
func (db *DB) SetFact(key string, v float64) {
	db.mu.Lock()
	db.facts[key] = v
	db.mu.Unlock()
}

// Fact returns a fact value.
func (db *DB) Fact(key string) (float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	v, ok := db.facts[key]
	return v, ok
}

// ImportFacts copies counters and EWMAs from a monitor snapshot into
// the fact store under their instrument names.
func (db *DB) ImportFacts(counters map[string]int64, ewmas map[string]float64) {
	db.mu.Lock()
	for k, v := range counters {
		db.facts[k] = float64(v)
	}
	for k, v := range ewmas {
		db.facts[k] = v
	}
	db.mu.Unlock()
}

// Query returns the hints matching target (and category, when non-empty)
// in descending priority order (name-sorted within equal priority, for
// determinism).
func (db *DB) Query(target Target, category Category) []*Hint {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []*Hint
	for _, h := range db.hints {
		if h.Target != target {
			continue
		}
		if category != "" && h.Category != category {
			continue
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Effective computes the effective parameter set for a target/category:
// parameters of matching hints merged lowest-priority-first (so higher
// priority overrides), then rules applied in hint order against current
// facts. This is what the dynamic compiler reads at a decision point.
func (db *DB) Effective(target Target, category Category) map[string]string {
	hs := db.Query(target, category)
	out := make(map[string]string)
	// Merge lowest priority first.
	for i := len(hs) - 1; i >= 0; i-- {
		for k, v := range hs[i].Params {
			out[k] = v
		}
	}
	db.mu.RLock()
	defer db.mu.RUnlock()
	for i := len(hs) - 1; i >= 0; i-- {
		for _, r := range hs[i].Rules {
			v, ok := db.facts[r.Fact]
			if ok && r.eval(v) {
				out[r.Key] = r.Set
			}
		}
	}
	return out
}

// ParamInt fetches an integer parameter with a default.
func ParamInt(params map[string]string, key string, def int) int {
	s, ok := params[key]
	if !ok {
		return def
	}
	v, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil {
		return def
	}
	return v
}

// ParamFloat fetches a float parameter with a default.
func ParamFloat(params map[string]string, key string, def float64) float64 {
	s, ok := params[key]
	if !ok {
		return def
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return def
	}
	return v
}

// ParamString fetches a string parameter with a default.
func ParamString(params map[string]string, key, def string) string {
	if s, ok := params[key]; ok {
		return s
	}
	return def
}
