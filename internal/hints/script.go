package hints

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseScript reads the line-oriented domain-expert script language of
// Fig. 3 into a knowledge database. The language has three statement
// forms:
//
//	# comment
//	fact <name> <number>
//	hint <name> target=<t> category=<c> priority=<n> [key=value ...]
//	rule <hint> when <fact> <op> <number> set <key>=<value>
//
// Operators: < > <= >= ==. Unknown statements are errors with line
// numbers, since scripts are written by humans.
func ParseScript(r io.Reader, db *DB) error {
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		var err error
		switch fields[0] {
		case "fact":
			err = parseFact(fields, db)
		case "hint":
			err = parseHint(fields, db)
		case "rule":
			err = parseRule(fields, db)
		default:
			err = fmt.Errorf("unknown statement %q", fields[0])
		}
		if err != nil {
			return fmt.Errorf("hints: line %d: %w", lineNo, err)
		}
	}
	return sc.Err()
}

// ParseScriptString is ParseScript over a string.
func ParseScriptString(s string, db *DB) error {
	return ParseScript(strings.NewReader(s), db)
}

func parseFact(fields []string, db *DB) error {
	if len(fields) != 3 {
		return fmt.Errorf("fact wants: fact <name> <number>")
	}
	v, err := strconv.ParseFloat(fields[2], 64)
	if err != nil {
		return fmt.Errorf("fact %q: bad number %q", fields[1], fields[2])
	}
	db.SetFact(fields[1], v)
	return nil
}

func parseHint(fields []string, db *DB) error {
	if len(fields) < 2 {
		return fmt.Errorf("hint wants: hint <name> key=value ...")
	}
	h := &Hint{Name: fields[1], Params: make(map[string]string)}
	for _, kv := range fields[2:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return fmt.Errorf("hint %q: expected key=value, got %q", h.Name, kv)
		}
		switch k {
		case "target":
			h.Target = Target(v)
		case "category":
			h.Category = Category(v)
		case "priority":
			p, err := strconv.Atoi(v)
			if err != nil {
				return fmt.Errorf("hint %q: bad priority %q", h.Name, v)
			}
			h.Priority = p
		default:
			h.Params[k] = v
		}
	}
	return db.AddHint(h)
}

func parseRule(fields []string, db *DB) error {
	// rule <hint> when <fact> <op> <number> set <key>=<value>
	if len(fields) != 8 || fields[2] != "when" || fields[6] != "set" {
		return fmt.Errorf("rule wants: rule <hint> when <fact> <op> <num> set <key>=<value>")
	}
	h, ok := db.Hint(fields[1])
	if !ok {
		return fmt.Errorf("rule references unknown hint %q", fields[1])
	}
	op := Op(fields[4])
	switch op {
	case OpLT, OpGT, OpLE, OpGE, OpEQ:
	default:
		return fmt.Errorf("rule: unknown operator %q", fields[4])
	}
	v, err := strconv.ParseFloat(fields[5], 64)
	if err != nil {
		return fmt.Errorf("rule: bad number %q", fields[5])
	}
	k, set, ok := strings.Cut(fields[7], "=")
	if !ok {
		return fmt.Errorf("rule: expected key=value after set, got %q", fields[7])
	}
	h.Rules = append(h.Rules, Rule{Fact: fields[3], Op: op, Value: v, Key: k, Set: set})
	return nil
}
