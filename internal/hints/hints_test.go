package hints

import (
	"strings"
	"testing"
)

func mkHint(name string, target Target, cat Category, prio int, params map[string]string) *Hint {
	if params == nil {
		params = map[string]string{}
	}
	return &Hint{Name: name, Target: target, Category: cat, Priority: prio, Params: params}
}

func TestAddAndQuery(t *testing.T) {
	db := NewDB()
	if err := db.AddHint(mkHint("a", TargetCompiler, CatLocality, 50, nil)); err != nil {
		t.Fatal(err)
	}
	if err := db.AddHint(mkHint("b", TargetRuntime, CatLocality, 20, nil)); err != nil {
		t.Fatal(err)
	}
	got := db.Query(TargetCompiler, CatLocality)
	if len(got) != 1 || got[0].Name != "a" {
		t.Errorf("Query = %v", got)
	}
	if len(db.Query(TargetRuntime, "")) != 1 {
		t.Error("empty category should match any")
	}
}

func TestQueryPriorityOrder(t *testing.T) {
	db := NewDB()
	db.AddHint(mkHint("low", TargetCompiler, CatAccess, 10, nil))
	db.AddHint(mkHint("high", TargetCompiler, CatAccess, 90, nil))
	db.AddHint(mkHint("mid", TargetCompiler, CatAccess, 50, nil))
	got := db.Query(TargetCompiler, CatAccess)
	if got[0].Name != "high" || got[1].Name != "mid" || got[2].Name != "low" {
		t.Errorf("priority order wrong: %v, %v, %v", got[0].Name, got[1].Name, got[2].Name)
	}
}

func TestValidation(t *testing.T) {
	db := NewDB()
	bad := []*Hint{
		mkHint("", TargetCompiler, CatLocality, 1, nil),
		mkHint("x", "nowhere", CatLocality, 1, nil),
		mkHint("x", TargetCompiler, "vibes", 1, nil),
		mkHint("x", TargetCompiler, CatLocality, 101, nil),
	}
	for i, h := range bad {
		if err := db.AddHint(h); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestEffectivePriorityOverride(t *testing.T) {
	db := NewDB()
	db.AddHint(mkHint("weak", TargetCompiler, CatComputation, 10,
		map[string]string{"chunk": "64", "strategy": "gss"}))
	db.AddHint(mkHint("strong", TargetCompiler, CatComputation, 90,
		map[string]string{"chunk": "8"}))
	eff := db.Effective(TargetCompiler, CatComputation)
	if eff["chunk"] != "8" {
		t.Errorf("chunk = %q, want high-priority 8", eff["chunk"])
	}
	if eff["strategy"] != "gss" {
		t.Errorf("strategy = %q, want inherited gss", eff["strategy"])
	}
}

func TestRulesRespondToFacts(t *testing.T) {
	db := NewDB()
	h := mkHint("adapt", TargetRuntime, CatLocality, 50,
		map[string]string{"replicate": "off"})
	h.Rules = []Rule{{Fact: "remote.fraction", Op: OpGT, Value: 0.3, Key: "replicate", Set: "on"}}
	if err := db.AddHint(h); err != nil {
		t.Fatal(err)
	}
	if eff := db.Effective(TargetRuntime, CatLocality); eff["replicate"] != "off" {
		t.Errorf("replicate = %q before fact, want off", eff["replicate"])
	}
	db.SetFact("remote.fraction", 0.5)
	if eff := db.Effective(TargetRuntime, CatLocality); eff["replicate"] != "on" {
		t.Errorf("replicate = %q after fact, want on", eff["replicate"])
	}
}

func TestRuleOperators(t *testing.T) {
	cases := []struct {
		op   Op
		v    float64
		want bool
	}{
		{OpLT, 1, true}, {OpLT, 5, false},
		{OpGT, 9, true}, {OpGT, 5, false},
		{OpLE, 5, true}, {OpLE, 6, false},
		{OpGE, 5, true}, {OpGE, 4, false},
		{OpEQ, 5, true}, {OpEQ, 4, false},
	}
	for _, c := range cases {
		r := Rule{Op: c.op, Value: 5}
		if got := r.eval(c.v); got != c.want {
			t.Errorf("%v %v 5 = %v, want %v", c.v, c.op, got, c.want)
		}
	}
}

func TestImportFacts(t *testing.T) {
	db := NewDB()
	db.ImportFacts(map[string]int64{"core.steals": 12}, map[string]float64{"lat.dram": 83.5})
	if v, ok := db.Fact("core.steals"); !ok || v != 12 {
		t.Errorf("counter fact = %v,%v", v, ok)
	}
	if v, ok := db.Fact("lat.dram"); !ok || v != 83.5 {
		t.Errorf("ewma fact = %v,%v", v, ok)
	}
}

func TestParamHelpers(t *testing.T) {
	p := map[string]string{"n": "42", "f": "2.5", "s": "abc", "bad": "xyz"}
	if ParamInt(p, "n", 0) != 42 || ParamInt(p, "missing", 7) != 7 || ParamInt(p, "bad", 7) != 7 {
		t.Error("ParamInt broken")
	}
	if ParamFloat(p, "f", 0) != 2.5 || ParamFloat(p, "missing", 1.5) != 1.5 {
		t.Error("ParamFloat broken")
	}
	if ParamString(p, "s", "") != "abc" || ParamString(p, "missing", "d") != "d" {
		t.Error("ParamString broken")
	}
}

func TestParseScriptFull(t *testing.T) {
	script := `
# pNeocortex mapping hints
fact neurons 2048
hint colgrain target=compiler category=computation-pattern priority=70 chunk=32 strategy=ssp
hint spikeloc target=runtime category=locality priority=80 replicate=off
rule spikeloc when remote.fraction > 0.25 set replicate=on
rule colgrain when iter.cv > 0.5 set chunk=8
`
	db := NewDB()
	if err := ParseScriptString(script, db); err != nil {
		t.Fatal(err)
	}
	if v, _ := db.Fact("neurons"); v != 2048 {
		t.Errorf("fact neurons = %v", v)
	}
	h, ok := db.Hint("colgrain")
	if !ok || h.Priority != 70 || h.Params["chunk"] != "32" || len(h.Rules) != 1 {
		t.Errorf("colgrain = %+v", h)
	}
	db.SetFact("iter.cv", 0.9)
	eff := db.Effective(TargetCompiler, CatComputation)
	if eff["chunk"] != "8" {
		t.Errorf("chunk = %q after rule, want 8", eff["chunk"])
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []string{
		"bogus statement",
		"fact onlyname",
		"fact x notanumber",
		"hint",
		"hint h target=compiler category=locality priority=nope",
		"hint h target=mars category=locality priority=5",
		"hint h keynovalue",
		"rule missing when x > 1 set a=b",
		"hint h target=compiler category=locality priority=5\nrule h when x ?? 1 set a=b",
		"hint h target=compiler category=locality priority=5\nrule h when x > one set a=b",
		"hint h target=compiler category=locality priority=5\nrule h when x > 1 set nokv",
		"hint h target=compiler category=locality priority=5\nrule h badsyntax",
	}
	for i, s := range cases {
		db := NewDB()
		if err := ParseScriptString(s, db); err == nil {
			t.Errorf("case %d: expected parse error for %q", i, s)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("case %d: error %v should carry a line number", i, err)
		}
	}
}

func TestParseScriptCommentsAndBlank(t *testing.T) {
	db := NewDB()
	if err := ParseScriptString("\n# just a comment\n\n", db); err != nil {
		t.Fatal(err)
	}
}
