package hints

import (
	"strings"
	"testing"
)

const roundTripScript = `# demo knowledge base
fact cache.miss_rate 0.37
fact loop.trip_count 4096
hint tiling target=compiler category=computation-pattern priority=70 tile=64 strategy=static-block
hint prefetch target=runtime category=access-pattern priority=40 distance=8
rule tiling when cache.miss_rate > 0.25 set tile=32
rule prefetch when loop.trip_count >= 1024 set distance=16
`

func TestWriteScriptRoundTrip(t *testing.T) {
	db := NewDB()
	if err := ParseScriptString(roundTripScript, db); err != nil {
		t.Fatal(err)
	}
	out1, err := db.ScriptString()
	if err != nil {
		t.Fatal(err)
	}
	db2 := NewDB()
	if err := ParseScriptString(out1, db2); err != nil {
		t.Fatalf("re-parse of exported script: %v\nscript:\n%s", err, out1)
	}
	out2, err := db2.ScriptString()
	if err != nil {
		t.Fatal(err)
	}
	// parse -> export -> parse -> export must be a fixed point: the
	// second export proves the re-parsed DB is equivalent to the first.
	if out1 != out2 {
		t.Fatalf("export not a fixed point:\nfirst:\n%s\nsecond:\n%s", out1, out2)
	}
	// And spot-check semantic equivalence, not just syntactic.
	if v, ok := db2.Fact("cache.miss_rate"); !ok || v != 0.37 {
		t.Fatalf("fact lost in round trip: %v %v", v, ok)
	}
	h, ok := db2.Hint("tiling")
	if !ok || h.Priority != 70 || h.Params["tile"] != "64" || len(h.Rules) != 1 {
		t.Fatalf("hint mangled in round trip: %+v", h)
	}
	eff := db2.Effective(TargetCompiler, CatComputation)
	if eff["tile"] != "32" { // rule fires: miss_rate 0.37 > 0.25
		t.Fatalf("rule lost in round trip: effective=%v", eff)
	}
}

func TestWriteScriptDeterministic(t *testing.T) {
	build := func() *DB {
		db := NewDB()
		db.SetFact("b", 2)
		db.SetFact("a", 1.5)
		for _, name := range []string{"zeta", "alpha", "mid"} {
			if err := db.AddHint(&Hint{
				Name: name, Target: TargetRuntime, Category: CatAccess, Priority: 10,
				Params: map[string]string{"y": "2", "x": "1"},
			}); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	s1, err := build().ScriptString()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := build().ScriptString()
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("export not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	want := []string{"fact a 1.5", "fact b 2"}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
}

func TestWriteScriptRejectsUnrepresentable(t *testing.T) {
	db := NewDB()
	db.SetFact("has space", 1)
	if _, err := db.ScriptString(); err == nil {
		t.Fatal("expected error for fact name with a space")
	}
}
