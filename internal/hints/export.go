package hints

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WriteScript serializes the database in the script language ParseScript
// reads, so a DB round-trips through the on-disk format: facts first,
// then hints, then rules, each group sorted by name so the output is
// deterministic. Names and parameter values must not contain whitespace
// (the grammar is whitespace-split); WriteScript rejects them rather
// than emitting a script that would parse into something else.
func (db *DB) WriteScript(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()

	factNames := make([]string, 0, len(db.facts))
	for name := range db.facts {
		factNames = append(factNames, name)
	}
	sort.Strings(factNames)
	for _, name := range factNames {
		if err := checkToken("fact name", name); err != nil {
			return err
		}
		v := strconv.FormatFloat(db.facts[name], 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "fact %s %s\n", name, v); err != nil {
			return err
		}
	}

	hintNames := make([]string, 0, len(db.hints))
	for name := range db.hints {
		hintNames = append(hintNames, name)
	}
	sort.Strings(hintNames)
	for _, name := range hintNames {
		h := db.hints[name]
		if err := checkToken("hint name", name); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "hint %s target=%s category=%s priority=%d",
			h.Name, h.Target, h.Category, h.Priority); err != nil {
			return err
		}
		keys := make([]string, 0, len(h.Params))
		for k := range h.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := checkToken("hint param", k+"="+h.Params[k]); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, " %s=%s", k, h.Params[k]); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
	}
	// Rules after all hints: a rule line references its hint by name.
	for _, name := range hintNames {
		h := db.hints[name]
		for _, r := range h.Rules {
			if err := checkToken("rule fact", r.Fact); err != nil {
				return err
			}
			if err := checkToken("rule set", r.Key+"="+r.Set); err != nil {
				return err
			}
			v := strconv.FormatFloat(r.Value, 'g', -1, 64)
			if _, err := fmt.Fprintf(w, "rule %s when %s %s %s set %s=%s\n",
				h.Name, r.Fact, r.Op, v, r.Key, r.Set); err != nil {
				return err
			}
		}
	}
	return nil
}

// ScriptString is WriteScript into a string.
func (db *DB) ScriptString() (string, error) {
	var sb strings.Builder
	if err := db.WriteScript(&sb); err != nil {
		return "", err
	}
	return sb.String(), nil
}

func checkToken(what, tok string) error {
	if tok == "" || strings.ContainsAny(tok, " \t\n\r#") {
		return fmt.Errorf("hints: %s %q is not representable in the script grammar", what, tok)
	}
	return nil
}
