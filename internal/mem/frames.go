package mem

import (
	"sync"
	"sync/atomic"
)

// FrameArena allocates SGT frame storage. Under HTVM "an SGT invocation
// will have its own private frame storage, where its local state is
// stored"; frames are allocated and freed at very high rates, so the
// arena recycles them through size-class pools rather than hitting the
// garbage collector on every spawn.
type FrameArena struct {
	classes []int
	pools   []sync.Pool
	allocs  atomic.Int64 // frames handed out
	fresh   atomic.Int64 // frames that had to be newly made
}

// defaultClasses covers frame sizes from 64 B to 16 KiB in powers of two.
var defaultClasses = []int{64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384}

// NewFrameArena creates an arena with the default size classes.
func NewFrameArena() *FrameArena {
	a := &FrameArena{classes: defaultClasses}
	a.pools = make([]sync.Pool, len(a.classes))
	for i := range a.pools {
		size := a.classes[i]
		a.pools[i].New = func() interface{} {
			a.fresh.Add(1)
			b := make([]byte, size)
			return &b
		}
	}
	return a
}

// classFor returns the index of the smallest class >= size, or -1 when
// the request exceeds the largest class (the caller gets a one-off
// allocation instead).
func (a *FrameArena) classFor(size int) int {
	for i, c := range a.classes {
		if size <= c {
			return i
		}
	}
	return -1
}

// Get returns a frame of at least size bytes, zeroed in its first size
// bytes.
func (a *FrameArena) Get(size int) []byte {
	a.allocs.Add(1)
	if size <= 0 {
		size = 1
	}
	ci := a.classFor(size)
	if ci < 0 {
		a.fresh.Add(1)
		return make([]byte, size)
	}
	bp := a.pools[ci].Get().(*[]byte)
	b := (*bp)[:a.classes[ci]]
	for i := 0; i < size; i++ {
		b[i] = 0
	}
	return b[:size]
}

// Put recycles a frame previously returned by Get. Oversized one-off
// frames are dropped for the GC.
func (a *FrameArena) Put(b []byte) {
	c := cap(b)
	for i, cls := range a.classes {
		if c == cls {
			b = b[:cls]
			a.pools[i].Put(&b)
			return
		}
	}
}

// Allocs returns the number of frames handed out.
func (a *FrameArena) Allocs() int64 { return a.allocs.Load() }

// ReuseRatio returns the fraction of Get calls served from the pools.
// It is approximate under concurrency (sync.Pool may drop items).
func (a *FrameArena) ReuseRatio() float64 {
	al := a.allocs.Load()
	if al == 0 {
		return 0
	}
	reused := al - a.fresh.Load()
	if reused < 0 {
		reused = 0
	}
	return float64(reused) / float64(al)
}

// PrivateHeap is an LGT's private memory: a simple bump allocator over a
// growable region, with whole-heap reset on LGT completion. Private
// allocation never contends with other LGTs.
type PrivateHeap struct {
	buf  []byte
	off  int
	grew int64
}

// NewPrivateHeap creates a heap with the given initial capacity.
func NewPrivateHeap(capacity int) *PrivateHeap {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &PrivateHeap{buf: make([]byte, capacity)}
}

// Alloc returns a zeroed slice of the requested size from the heap,
// growing the backing region when needed. Alignment is 8 bytes.
func (h *PrivateHeap) Alloc(size int) []byte {
	if size <= 0 {
		size = 1
	}
	aligned := (size + 7) &^ 7
	if h.off+aligned > len(h.buf) {
		newCap := 2 * len(h.buf)
		for newCap < h.off+aligned {
			newCap *= 2
		}
		nb := make([]byte, newCap)
		copy(nb, h.buf[:h.off])
		h.buf = nb
		h.grew++
	}
	b := h.buf[h.off : h.off+size]
	for i := range b {
		b[i] = 0
	}
	h.off += aligned
	return b
}

// Used returns the number of bytes currently allocated.
func (h *PrivateHeap) Used() int { return h.off }

// Reset discards all allocations, retaining the backing region.
func (h *PrivateHeap) Reset() { h.off = 0 }

// Grows reports how many times the backing region was reallocated.
func (h *PrivateHeap) Grows() int64 { return h.grew }
