package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestFrameArenaGetPut(t *testing.T) {
	a := NewFrameArena()
	f := a.Get(100)
	if len(f) != 100 {
		t.Errorf("len = %d, want 100", len(f))
	}
	for i := range f {
		f[i] = 0xff
	}
	a.Put(f)
	g := a.Get(100)
	for i, b := range g {
		if b != 0 {
			t.Fatalf("reused frame not zeroed at %d", i)
		}
	}
}

func TestFrameArenaOversized(t *testing.T) {
	a := NewFrameArena()
	f := a.Get(1 << 20)
	if len(f) != 1<<20 {
		t.Errorf("oversized len = %d", len(f))
	}
	a.Put(f) // must not panic
}

func TestFrameArenaZeroSize(t *testing.T) {
	a := NewFrameArena()
	if f := a.Get(0); len(f) != 1 {
		t.Errorf("Get(0) len = %d, want 1", len(f))
	}
}

func TestFrameArenaReuse(t *testing.T) {
	a := NewFrameArena()
	for i := 0; i < 100; i++ {
		f := a.Get(256)
		a.Put(f)
	}
	if r := a.ReuseRatio(); r < 0.5 {
		t.Errorf("ReuseRatio = %v, want >= 0.5 after serial reuse", r)
	}
	if a.Allocs() != 100 {
		t.Errorf("Allocs = %d, want 100", a.Allocs())
	}
}

func TestFrameArenaConcurrent(t *testing.T) {
	a := NewFrameArena()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				f := a.Get(64 + i%512)
				f[0] = byte(i)
				a.Put(f)
			}
		}()
	}
	wg.Wait()
}

func TestFrameSizeProperty(t *testing.T) {
	a := NewFrameArena()
	f := func(raw uint16) bool {
		size := int(raw)%20000 + 1
		fr := a.Get(size)
		ok := len(fr) == size
		a.Put(fr)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPrivateHeapAlloc(t *testing.T) {
	h := NewPrivateHeap(64)
	a := h.Alloc(10)
	b := h.Alloc(10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatal("wrong sizes")
	}
	a[0] = 1
	if b[0] != 0 {
		t.Error("allocations alias")
	}
	if h.Used() != 32 { // two 16-byte aligned blocks
		t.Errorf("Used = %d, want 32", h.Used())
	}
}

func TestPrivateHeapGrow(t *testing.T) {
	h := NewPrivateHeap(16)
	h.Alloc(8)
	h.Alloc(64) // must grow
	if h.Grows() == 0 {
		t.Error("expected growth")
	}
	big := h.Alloc(1000)
	if len(big) != 1000 {
		t.Errorf("len = %d", len(big))
	}
}

func TestPrivateHeapReset(t *testing.T) {
	h := NewPrivateHeap(128)
	h.Alloc(100)
	h.Reset()
	if h.Used() != 0 {
		t.Errorf("Used after reset = %d", h.Used())
	}
	f := h.Alloc(8)
	if len(f) != 8 {
		t.Error("alloc after reset failed")
	}
}

func TestPrivateHeapZeroed(t *testing.T) {
	h := NewPrivateHeap(64)
	a := h.Alloc(32)
	for i := range a {
		a[i] = 0xaa
	}
	h.Reset()
	b := h.Alloc(32)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("reused heap memory not zeroed at %d", i)
		}
	}
}
