package mem

import (
	"sync"
	"testing"
)

// TestConcurrentAccessVsSnapshots hammers the directory from many
// goroutines — readers, writers, movers — while others continuously
// take the read-side views (Stats, AccessCounts, Objects, Home,
// HasValidReplica, MajorityHome, RemoteFraction). Run under -race in CI
// it proves the serving data plane can record accesses on every batch
// SGT while the locality loop analyzes and rebalances concurrently; the
// end-state assertions prove no update was lost under contention.
func TestConcurrentAccessVsSnapshots(t *testing.T) {
	const (
		locales = 4
		objects = 16
		workers = 8
		rounds  = 400
	)
	s := NewSpace(locales, nil)
	ids := make([]ObjID, objects)
	for i := range ids {
		ids[i] = s.Alloc(Locale(i%locales), 64)
	}
	var wg sync.WaitGroup
	// Access recorders: the batch SGTs of the serve layer.
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			loc := Locale(w % locales)
			for r := 0; r < rounds; r++ {
				id := ids[(w+r)%objects]
				if r%5 == 0 {
					s.WriteAccess(loc, id, 0)
				} else {
					s.ReadAccess(loc, id, 0)
				}
			}
		}()
	}
	// Movers: the locality loop's migrate/replicate/decay actions.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds/4; r++ {
			id := ids[r%objects]
			switch r % 3 {
			case 0:
				s.Replicate(id, Locale(r%locales))
			case 1:
				s.Migrate(id, Locale(r%locales))
			default:
				s.DecayCounts()
			}
		}
	}()
	// Snapshotters: monitors and routers reading while everything moves.
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				id := ids[r%objects]
				_ = s.Stats()
				_, _ = s.AccessCounts(id)
				_ = s.Objects()
				_ = s.Home(id)
				_ = s.HasValidReplica(id, Locale(r%locales))
				_, _ = s.MajorityHome(ids[:1+r%objects])
				_ = s.RemoteFraction()
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if want := int64(workers * rounds / 5); st.Writes != want {
		t.Errorf("writes = %d, want %d (lost updates under contention)", st.Writes, want)
	}
	if want := int64(workers*rounds) - int64(workers*rounds/5); st.Reads != want {
		t.Errorf("reads = %d, want %d (lost updates under contention)", st.Reads, want)
	}
	if st.TotalCost <= 0 {
		t.Error("no cost accrued")
	}
}

// TestConcurrentAllocAndAccess allocates while accessing: the id space
// must stay dense and every allocated object reachable.
func TestConcurrentAllocAndAccess(t *testing.T) {
	const allocs = 64
	s := NewSpace(2, nil)
	seedObj := s.Alloc(0, 8)
	var wg sync.WaitGroup
	got := make([][]ObjID, 4)
	for w := range got {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < allocs; i++ {
				got[w] = append(got[w], s.Alloc(Locale(i%2), 16))
				s.ReadAccess(1, seedObj, 0)
			}
		}()
	}
	wg.Wait()
	seen := map[ObjID]bool{seedObj: true}
	for _, idset := range got {
		for _, id := range idset {
			if seen[id] {
				t.Fatalf("duplicate object id %d handed out", id)
			}
			seen[id] = true
		}
	}
	if n := len(s.Objects()); n != len(seen) {
		t.Errorf("directory lists %d objects, allocated %d", n, len(seen))
	}
}
