package mem

import "testing"

// The serving data plane puts Space on the per-request path twice: a
// MajorityHome lookup at admission (locality routing) and a ReadAccess
// per working-set object at execution. These benchmarks baseline that
// read-mostly hot path — single-threaded and contended — so data-plane
// changes that fatten the directory lock show up as regressions here.

func benchSpace(objects int) (*Space, []ObjID) {
	s := NewSpace(4, nil)
	ids := make([]ObjID, objects)
	for i := range ids {
		ids[i] = s.Alloc(Locale(i%4), 256)
	}
	return s, ids
}

func BenchmarkReadAccessLocal(b *testing.B) {
	s, ids := benchSpace(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Issue at the object's home (ids[j] is homed at j%4): the
		// all-local fast path staging and routing try to put every
		// access on.
		s.ReadAccess(Locale(i&3), ids[i&63], 0)
	}
}

func BenchmarkReadAccessRemote(b *testing.B) {
	s, ids := benchSpace(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Issue one locale away from home: the remote path with its
		// replication bookkeeping.
		s.ReadAccess(Locale((i+1)&3), ids[i&63], 0)
	}
}

func BenchmarkMajorityHome(b *testing.B) {
	s, ids := benchSpace(64)
	ws := []ObjID{ids[0], ids[4], ids[8]} // three objects, all homed at 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MajorityHome(ws)
	}
}

func BenchmarkReadAccessParallel(b *testing.B) {
	s, ids := benchSpace(64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			s.ReadAccess(Locale(i&3), ids[i&63], 0)
			i++
		}
	})
}

func BenchmarkStatsSnapshot(b *testing.B) {
	s, ids := benchSpace(64)
	for i, id := range ids {
		s.ReadAccess(Locale(i&3), id, 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Stats()
	}
}
