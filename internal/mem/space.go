// Package mem implements the HTVM memory model (Section 3.1): a global
// address space partitioned across locales (nodes), private per-LGT
// heaps, and per-SGT frame storage. Data objects in the global space can
// migrate and be replicated in the memory hierarchy "while copy
// consistency is preserved" — this package provides exactly that: a
// home-based directory with invalidate-on-write consistency, plus the
// per-locale access statistics the locality-adaptation controller
// (internal/adapt) uses to decide migration and replication.
//
// The package models placement and timing cost; payload bytes live in
// ordinary Go memory owned by the application.
package mem

import (
	"fmt"
	"sync"
)

// Locale identifies a node of the machine.
type Locale int

// ObjID names an object in the global space.
type ObjID int64

// AccessKind distinguishes reads from writes in access records.
type AccessKind uint8

// Access kinds.
const (
	Read AccessKind = iota
	Write
)

// CostModel prices accesses. Implementations exist for a flat SMP
// (UniformCost) and for distance-sensitive machines (RingCost); the c64
// simulator experiments convert cycles through this interface too.
type CostModel interface {
	// Local prices an access of size bytes served on the issuing locale.
	Local(bytes int) int64
	// Remote prices an access of size bytes served hops away.
	Remote(hops, bytes int) int64
}

// UniformCost prices every access the same regardless of distance.
type UniformCost struct{ Cost int64 }

// Local implements CostModel.
func (u UniformCost) Local(bytes int) int64 { return u.Cost }

// Remote implements CostModel.
func (u UniformCost) Remote(hops, bytes int) int64 { return u.Cost }

// RingCost prices remote accesses by ring distance with a per-byte term,
// matching the c64 network model.
type RingCost struct {
	LocalLat int64 // local service
	HopLat   int64 // per hop, round trip already included
	ByteCost int64 // per 8 bytes
}

// Local implements CostModel.
func (r RingCost) Local(bytes int) int64 { return r.LocalLat }

// Remote implements CostModel.
func (r RingCost) Remote(hops, bytes int) int64 {
	return r.LocalLat + 2*int64(hops)*r.HopLat + int64((bytes+7)/8)*r.ByteCost
}

// Object is one entry in the global-space directory.
type object struct {
	id      ObjID
	home    Locale
	size    int
	version uint64
	// replicas maps locale -> version of the copy held there. A replica
	// is valid iff its version equals the object version.
	replicas map[Locale]uint64

	reads  []int64 // per-locale read counts since last Decay
	writes []int64
}

// AccessInfo describes one completed access, for the monitor and for
// latency accounting by the caller (e.g. Stall on the simulator).
type AccessInfo struct {
	Obj    ObjID
	Kind   AccessKind
	From   Locale
	Served Locale // locale that satisfied the access
	Remote bool
	Hops   int
	Bytes  int
	Cost   int64
}

// Space is the global address space directory. All methods are safe for
// concurrent use.
type Space struct {
	mu      sync.Mutex
	locales int
	cost    CostModel
	objects map[ObjID]*object
	next    ObjID

	// ReplicateAfter, when > 0, auto-replicates an object at a locale
	// after that many remote reads from it since the last invalidation.
	ReplicateAfter int64
	remoteReads    map[ObjID]map[Locale]int64

	// homeScratch is MajorityHome's count buffer for machines past its
	// stack buffer (32 locales). Guarded by mu; touched entries are
	// re-zeroed after each use so the read path never allocates.
	homeScratch []int32

	stats SpaceStats
}

// SpaceStats aggregates space-wide counters.
type SpaceStats struct {
	Reads         int64
	Writes        int64
	RemoteReads   int64
	RemoteWrites  int64
	Replications  int64
	Migrations    int64
	Invalidations int64
	TotalCost     int64
	// Rehomes counts Rehome calls that moved an object's home off a lost
	// locale; RehomePromotions is the subset served free from a valid
	// replica at the new home.
	Rehomes          int64
	RehomePromotions int64
}

// NewSpace creates a directory over the given number of locales with the
// given cost model.
func NewSpace(locales int, cost CostModel) *Space {
	if locales <= 0 {
		panic("mem: locales must be positive")
	}
	if cost == nil {
		cost = UniformCost{Cost: 1}
	}
	return &Space{
		locales:     locales,
		cost:        cost,
		objects:     make(map[ObjID]*object),
		remoteReads: make(map[ObjID]map[Locale]int64),
	}
}

// Locales returns the number of locales the space spans.
func (s *Space) Locales() int { return s.locales }

// hops returns ring distance between locales.
func (s *Space) hops(a, b Locale) int {
	if a == b {
		return 0
	}
	d := int(a - b)
	if d < 0 {
		d = -d
	}
	if w := s.locales - d; w < d {
		d = w
	}
	return d
}

// Alloc creates an object of size bytes homed at the given locale.
func (s *Space) Alloc(home Locale, size int) ObjID {
	if home < 0 || int(home) >= s.locales {
		panic(fmt.Sprintf("mem: alloc at invalid locale %d", home))
	}
	if size <= 0 {
		size = 8
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.next++
	id := s.next
	s.objects[id] = &object{
		id: id, home: home, size: size,
		replicas: make(map[Locale]uint64),
		reads:    make([]int64, s.locales),
		writes:   make([]int64, s.locales),
	}
	return id
}

func (s *Space) get(id ObjID) *object {
	o, ok := s.objects[id]
	if !ok {
		panic(fmt.Sprintf("mem: unknown object %d", id))
	}
	return o
}

// Home returns the object's current home locale.
func (s *Space) Home(id ObjID) Locale {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(id).home
}

// Size returns the object's size in bytes.
func (s *Space) Size(id ObjID) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.get(id).size
}

// MajorityHome returns the locale where most of the given objects are
// homed — the serving data plane's routing signal: a request declaring
// this working set runs cheapest where most of its data already lives.
// Ties break toward the locale that reached the winning count first in
// slice order, so a two-object set deterministically follows its first
// object. All ids are resolved under one lock acquisition, and the
// count is allocation-free for machines up to 32 locales — this sits on
// the admission hot path of every working-set request, so the critical
// section must stay a few array ops. ok is false when ids is empty.
func (s *Space) MajorityHome(ids []ObjID) (home Locale, ok bool) {
	if len(ids) == 0 {
		return 0, false
	}
	var buf [32]int32
	counts := buf[:]
	s.mu.Lock()
	defer s.mu.Unlock()
	big := s.locales > len(buf)
	if big {
		// Wide machines count in a lock-guarded scratch slice instead of
		// allocating per call; only the touched entries are cleared after.
		if cap(s.homeScratch) < s.locales {
			s.homeScratch = make([]int32, s.locales)
		}
		counts = s.homeScratch[:s.locales]
	}
	best, bestN := Locale(0), int32(0)
	for _, id := range ids {
		h := s.get(id).home
		counts[h]++
		if counts[h] > bestN {
			best, bestN = h, counts[h]
		}
	}
	if big {
		for _, id := range ids {
			counts[s.get(id).home] = 0
		}
	}
	return best, true
}

// AllValidAt reports whether every id has a valid copy (or its home) at
// loc, under one lock acquisition — the batch form of HasValidReplica
// for read paths that must not pay a lock round trip per object, like
// the rebalancer's data-residency gate. Allocation-free. True for an
// empty set.
func (s *Space) AllValidAt(ids []ObjID, loc Locale) bool {
	if len(ids) == 0 {
		return true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range ids {
		o := s.get(id)
		if o.home == loc {
			continue
		}
		if v, ok := o.replicas[loc]; !ok || v != o.version {
			return false
		}
	}
	return true
}

// HasValidReplica reports whether loc holds a current copy of id
// (including the home itself).
func (s *Space) HasValidReplica(id ObjID, loc Locale) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id)
	if o.home == loc {
		return true
	}
	v, ok := o.replicas[loc]
	return ok && v == o.version
}

// ReadAccess records a read of bytes from the object issued at from,
// serving it from the nearest valid copy, and returns the access
// record. bytes <= 0 reads the whole object.
func (s *Space) ReadAccess(from Locale, id ObjID, bytes int) AccessInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id)
	o.reads[from]++
	s.stats.Reads++
	if bytes <= 0 {
		bytes = o.size
	}

	served := o.home
	if o.home != from {
		if v, ok := o.replicas[from]; ok && v == o.version {
			served = from
		}
	}
	info := AccessInfo{Obj: id, Kind: Read, From: from, Served: served, Bytes: bytes}
	if served == from {
		info.Cost = s.cost.Local(bytes)
	} else {
		info.Remote = true
		info.Hops = s.hops(from, served)
		info.Cost = s.cost.Remote(info.Hops, bytes)
		s.stats.RemoteReads++
		s.noteRemoteReadLocked(o, from)
	}
	s.stats.TotalCost += info.Cost
	return info
}

// noteRemoteReadLocked counts remote reads and auto-replicates when the
// configured threshold is crossed.
func (s *Space) noteRemoteReadLocked(o *object, from Locale) {
	if s.ReplicateAfter <= 0 {
		return
	}
	m := s.remoteReads[o.id]
	if m == nil {
		m = make(map[Locale]int64)
		s.remoteReads[o.id] = m
	}
	m[from]++
	if m[from] >= s.ReplicateAfter {
		m[from] = 0
		s.replicateLocked(o, from)
	}
}

// WriteAccess records a write issued at from. Writes are serviced at the
// home (home-based protocol); all replicas are invalidated. bytes <= 0
// writes the whole object.
func (s *Space) WriteAccess(from Locale, id ObjID, bytes int) AccessInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id)
	o.writes[from]++
	s.stats.Writes++
	if bytes <= 0 {
		bytes = o.size
	}
	info := AccessInfo{Obj: id, Kind: Write, From: from, Served: o.home, Bytes: bytes}
	if o.home == from {
		info.Cost = s.cost.Local(bytes)
	} else {
		info.Remote = true
		info.Hops = s.hops(from, o.home)
		info.Cost = s.cost.Remote(info.Hops, bytes)
		s.stats.RemoteWrites++
	}
	o.version++
	if n := len(o.replicas); n > 0 {
		s.stats.Invalidations += int64(n)
		for k := range o.replicas {
			delete(o.replicas, k)
		}
	}
	delete(s.remoteReads, id)
	s.stats.TotalCost += info.Cost
	return info
}

// Replicate installs a current copy of id at loc and returns the
// transfer cost. Replicating at the home is a no-op.
func (s *Space) Replicate(id ObjID, loc Locale) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replicateLocked(s.get(id), loc)
}

func (s *Space) replicateLocked(o *object, loc Locale) int64 {
	if loc == o.home {
		return 0
	}
	o.replicas[loc] = o.version
	s.stats.Replications++
	cost := s.cost.Remote(s.hops(o.home, loc), o.size)
	s.stats.TotalCost += cost
	return cost
}

// Replicas returns the locales currently holding a valid copy of the
// object, home excluded, in ascending locale order.
func (s *Space) Replicas(id ObjID) []Locale {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id)
	var out []Locale
	for l := Locale(0); int(l) < s.locales; l++ {
		if v, ok := o.replicas[l]; ok && v == o.version && l != o.home {
			out = append(out, l)
		}
	}
	return out
}

// Rehome moves the object's home to loc after the old home was LOST —
// unlike Migrate, nothing can transfer from it. When loc holds a valid
// replica the move is a free promotion (the copy becomes the home and
// the other valid replicas survive); otherwise the object is
// re-materialized at loc at local-build cost and every stale replica
// drops. promoted reports which path ran. Rehoming to the current home
// is a no-op.
func (s *Space) Rehome(id ObjID, loc Locale) (cost int64, promoted bool) {
	if loc < 0 || int(loc) >= s.locales {
		panic(fmt.Sprintf("mem: rehome to invalid locale %d", loc))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id)
	if o.home == loc {
		return 0, true
	}
	s.stats.Rehomes++
	if v, ok := o.replicas[loc]; ok && v == o.version {
		delete(o.replicas, loc)
		o.home = loc
		s.stats.RehomePromotions++
		return 0, true
	}
	// No valid copy at the new home: rebuild there, and nothing else can
	// claim validity against the rebuilt object.
	cost = s.cost.Local(o.size)
	o.home = loc
	o.version++
	for k := range o.replicas {
		delete(o.replicas, k)
	}
	delete(s.remoteReads, id)
	s.stats.TotalCost += cost
	return cost, false
}

// Migrate moves the object's home to loc, invalidating replicas, and
// returns the transfer cost. Migrating to the current home is free.
func (s *Space) Migrate(id ObjID, loc Locale) int64 {
	if loc < 0 || int(loc) >= s.locales {
		panic(fmt.Sprintf("mem: migrate to invalid locale %d", loc))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id)
	if o.home == loc {
		return 0
	}
	cost := s.cost.Remote(s.hops(o.home, loc), o.size)
	o.home = loc
	for k := range o.replicas {
		delete(o.replicas, k)
	}
	delete(s.remoteReads, id)
	s.stats.Migrations++
	s.stats.TotalCost += cost
	return cost
}

// AccessCounts returns per-locale read and write counts for the object
// since the last DecayCounts. The slices are copies.
func (s *Space) AccessCounts(id ObjID) (reads, writes []int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	o := s.get(id)
	return append([]int64(nil), o.reads...), append([]int64(nil), o.writes...)
}

// DecayCounts halves all access counters, aging the history the locality
// manager bases decisions on.
func (s *Space) DecayCounts() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, o := range s.objects {
		for i := range o.reads {
			o.reads[i] /= 2
			o.writes[i] /= 2
		}
	}
}

// Objects returns the ids of all allocated objects, in allocation order.
func (s *Space) Objects() []ObjID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ids := make([]ObjID, 0, len(s.objects))
	for id := ObjID(1); id <= s.next; id++ {
		if _, ok := s.objects[id]; ok {
			ids = append(ids, id)
		}
	}
	return ids
}

// Stats returns a copy of the space-wide counters.
func (s *Space) Stats() SpaceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// RemoteFraction returns the fraction of all accesses that were remote.
func (s *Space) RemoteFraction() float64 {
	st := s.Stats()
	total := st.Reads + st.Writes
	if total == 0 {
		return 0
	}
	return float64(st.RemoteReads+st.RemoteWrites) / float64(total)
}
