package mem

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func newTestSpace(locales int) *Space {
	return NewSpace(locales, RingCost{LocalLat: 10, HopLat: 40, ByteCost: 1})
}

func TestAllocAndHome(t *testing.T) {
	s := newTestSpace(4)
	id := s.Alloc(2, 128)
	if h := s.Home(id); h != 2 {
		t.Errorf("Home = %d, want 2", h)
	}
	if sz := s.Size(id); sz != 128 {
		t.Errorf("Size = %d, want 128", sz)
	}
}

func TestAllocInvalidLocalePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	newTestSpace(2).Alloc(5, 8)
}

func TestLocalVsRemoteRead(t *testing.T) {
	s := newTestSpace(4)
	id := s.Alloc(0, 64)
	local := s.ReadAccess(0, id, 8)
	remote := s.ReadAccess(2, id, 8)
	if local.Remote {
		t.Error("read at home marked remote")
	}
	if !remote.Remote || remote.Hops != 2 {
		t.Errorf("remote read = %+v, want remote with 2 hops", remote)
	}
	if remote.Cost <= local.Cost {
		t.Errorf("remote cost %d should exceed local %d", remote.Cost, local.Cost)
	}
}

func TestReplicaServesReads(t *testing.T) {
	s := newTestSpace(4)
	id := s.Alloc(0, 64)
	s.Replicate(id, 3)
	if !s.HasValidReplica(id, 3) {
		t.Fatal("replica not installed")
	}
	a := s.ReadAccess(3, id, 8)
	if a.Remote || a.Served != 3 {
		t.Errorf("read with valid replica = %+v, want local", a)
	}
}

func TestWriteInvalidatesReplicas(t *testing.T) {
	s := newTestSpace(4)
	id := s.Alloc(0, 64)
	s.Replicate(id, 1)
	s.Replicate(id, 2)
	s.WriteAccess(0, id, 8)
	if s.HasValidReplica(id, 1) || s.HasValidReplica(id, 2) {
		t.Error("write did not invalidate replicas")
	}
	if inv := s.Stats().Invalidations; inv != 2 {
		t.Errorf("Invalidations = %d, want 2", inv)
	}
	// Subsequent remote read must be remote again.
	if a := s.ReadAccess(1, id, 8); !a.Remote {
		t.Error("read after invalidation should be remote")
	}
}

func TestRemoteWriteServedAtHome(t *testing.T) {
	s := newTestSpace(4)
	id := s.Alloc(0, 64)
	a := s.WriteAccess(3, id, 8)
	if !a.Remote || a.Served != 0 {
		t.Errorf("remote write = %+v, want served at home 0", a)
	}
}

func TestMigrate(t *testing.T) {
	s := newTestSpace(4)
	id := s.Alloc(0, 256)
	s.Replicate(id, 2)
	cost := s.Migrate(id, 3)
	if cost <= 0 {
		t.Error("migration should have nonzero cost")
	}
	if s.Home(id) != 3 {
		t.Errorf("home after migrate = %d, want 3", s.Home(id))
	}
	if s.HasValidReplica(id, 2) {
		t.Error("migration should invalidate replicas")
	}
	if s.Migrate(id, 3) != 0 {
		t.Error("migrating to current home should be free")
	}
	a := s.ReadAccess(3, id, 8)
	if a.Remote {
		t.Error("read at new home should be local")
	}
}

func TestAutoReplication(t *testing.T) {
	s := newTestSpace(2)
	s.ReplicateAfter = 3
	id := s.Alloc(0, 64)
	for i := 0; i < 3; i++ {
		s.ReadAccess(1, id, 8)
	}
	if !s.HasValidReplica(id, 1) {
		t.Error("auto-replication did not trigger after threshold")
	}
	a := s.ReadAccess(1, id, 8)
	if a.Remote {
		t.Error("read after auto-replication should be local")
	}
}

func TestAccessCountsAndDecay(t *testing.T) {
	s := newTestSpace(3)
	id := s.Alloc(0, 8)
	s.ReadAccess(1, id, 8)
	s.ReadAccess(1, id, 8)
	s.WriteAccess(2, id, 8)
	reads, writes := s.AccessCounts(id)
	if reads[1] != 2 || writes[2] != 1 {
		t.Errorf("counts = %v / %v", reads, writes)
	}
	s.DecayCounts()
	reads, _ = s.AccessCounts(id)
	if reads[1] != 1 {
		t.Errorf("decayed reads = %v, want [0 1 0]", reads)
	}
}

func TestRemoteFraction(t *testing.T) {
	s := newTestSpace(2)
	id := s.Alloc(0, 8)
	s.ReadAccess(0, id, 8)
	s.ReadAccess(1, id, 8)
	if f := s.RemoteFraction(); f != 0.5 {
		t.Errorf("RemoteFraction = %v, want 0.5", f)
	}
}

func TestObjectsOrder(t *testing.T) {
	s := newTestSpace(2)
	a := s.Alloc(0, 8)
	b := s.Alloc(1, 8)
	ids := s.Objects()
	if len(ids) != 2 || ids[0] != a || ids[1] != b {
		t.Errorf("Objects = %v, want [%d %d]", ids, a, b)
	}
}

func TestConcurrentAccessSafety(t *testing.T) {
	s := newTestSpace(4)
	ids := make([]ObjID, 16)
	for i := range ids {
		ids[i] = s.Alloc(Locale(i%4), 64)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := stats.NewRNG(uint64(w + 1))
			for i := 0; i < 500; i++ {
				id := ids[r.Intn(len(ids))]
				loc := Locale(r.Intn(4))
				switch r.Intn(4) {
				case 0:
					s.WriteAccess(loc, id, 8)
				case 1:
					s.Replicate(id, loc)
				case 2:
					s.Migrate(id, loc)
				default:
					s.ReadAccess(loc, id, 8)
				}
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Reads == 0 || st.Writes == 0 {
		t.Error("expected nonzero activity")
	}
}

// Property: a replica never serves a read unless its version matches,
// i.e. reads after a write are remote until re-replication.
func TestConsistencyProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := stats.NewRNG(seed)
		s := newTestSpace(4)
		id := s.Alloc(Locale(r.Intn(4)), 64)
		// Interleave writes, replications and reads randomly; after
		// every write, an immediate read from a non-home locale that has
		// not re-replicated must be remote.
		for i := 0; i < 50; i++ {
			switch r.Intn(3) {
			case 0:
				s.Replicate(id, Locale(r.Intn(4)))
			case 1:
				s.WriteAccess(Locale(r.Intn(4)), id, 8)
				home := s.Home(id)
				for l := Locale(0); l < 4; l++ {
					if l != home && s.HasValidReplica(id, l) {
						return false // stale replica considered valid
					}
				}
			default:
				loc := Locale(r.Intn(4))
				a := s.ReadAccess(loc, id, 8)
				if !a.Remote && a.Served != loc {
					return false
				}
				if a.Remote && a.Served == loc {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRehomePromotesValidReplica(t *testing.T) {
	s := NewSpace(4, UniformCost{Cost: 5})
	id := s.Alloc(0, 64)
	s.Replicate(id, 2)
	s.Replicate(id, 3)

	cost, promoted := s.Rehome(id, 2)
	if !promoted || cost != 0 {
		t.Fatalf("Rehome onto valid replica: cost=%d promoted=%v, want free promotion", cost, promoted)
	}
	if s.Home(id) != 2 {
		t.Fatalf("home = %d, want 2", s.Home(id))
	}
	// The other replica survived the promotion.
	if !s.HasValidReplica(id, 3) {
		t.Fatal("replica at 3 lost validity during promotion")
	}
	st := s.Stats()
	if st.Rehomes != 1 || st.RehomePromotions != 1 {
		t.Fatalf("stats = %+v, want Rehomes=1 RehomePromotions=1", st)
	}
}

func TestRehomeWithoutReplicaRebuilds(t *testing.T) {
	s := NewSpace(4, UniformCost{Cost: 5})
	id := s.Alloc(0, 64)
	s.Replicate(id, 3)

	cost, promoted := s.Rehome(id, 1) // no copy at 1
	if promoted || cost == 0 {
		t.Fatalf("Rehome without replica: cost=%d promoted=%v, want charged rebuild", cost, promoted)
	}
	if s.Home(id) != 1 {
		t.Fatalf("home = %d, want 1", s.Home(id))
	}
	// The rebuild bumped the version, so the old copy at 3 is stale.
	if s.HasValidReplica(id, 3) {
		t.Fatal("stale replica at 3 still reads as valid after rebuild")
	}
	st := s.Stats()
	if st.Rehomes != 1 || st.RehomePromotions != 0 {
		t.Fatalf("stats = %+v, want Rehomes=1 RehomePromotions=0", st)
	}
}

func TestReplicasListsOnlyValidCopies(t *testing.T) {
	s := NewSpace(4, UniformCost{Cost: 1})
	id := s.Alloc(0, 8)
	s.Replicate(id, 1)
	s.Replicate(id, 3)
	if got := s.Replicas(id); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Replicas = %v, want [1 3]", got)
	}
	s.WriteAccess(0, id, 0) // invalidates everything
	if got := s.Replicas(id); len(got) != 0 {
		t.Fatalf("Replicas after invalidation = %v, want none", got)
	}
}
