// Package adapt implements the four classes of runtime adaptivity the
// paper identifies as critical (Section 2):
//
//  1. loop parallelism adaptation — retuning grain size and strategy of
//     parallel loops (LoopController, over internal/sched);
//  2. dynamic load adaptation — thread migration to rebalance load
//     (LoadController, deciding stealing policy and migration plans);
//  3. locality adaptation — data object migration and replication with
//     consistency preserved (LocalityManager, over internal/mem);
//  4. latency adaptation — adjusting latency-hiding machinery as
//     observed latencies drift (LatencyController, steering percolation
//     depth and fetch-vs-parcel decisions).
//
// Controllers are deliberately pure decision components: they consume
// monitor snapshots, hint parameters, and directory statistics, and
// emit actions the runtime applies. That keeps every policy unit-
// testable and lets the experiment harness ablate them one by one.
package adapt

import (
	"fmt"

	"repro/internal/hints"
	"repro/internal/mem"
	"repro/internal/monitor"
	"repro/internal/percolate"
	"repro/internal/sched"
)

// ---------------------------------------------------------------------
// 1. Loop parallelism adaptation.

// LoopController picks and retunes loop-scheduling strategies per loop,
// combining domain hints with observed profiles.
type LoopController struct {
	DB    *hints.DB
	ctrls map[string]*sched.Adaptive
}

// NewLoopController creates a controller backed by the knowledge DB
// (nil is allowed: pure profile-driven adaptation).
func NewLoopController(db *hints.DB) *LoopController {
	return &LoopController{DB: db, ctrls: make(map[string]*sched.Adaptive)}
}

// Adaptive returns (creating on demand) the per-loop adaptive tuner.
func (c *LoopController) Adaptive(loop string) *sched.Adaptive {
	a, ok := c.ctrls[loop]
	if !ok {
		a = sched.NewAdaptive()
		c.ctrls[loop] = a
	}
	return a
}

// FactoryFor resolves the scheduling strategy for the named loop from
// the effective hint parameters: strategy in {static, cyclic, self,
// chunked, gss, factoring, trapezoid, adaptive} with an optional chunk
// parameter. Unknown or missing strategies default to adaptive — the
// paper's position is that static choices are the fallback, not the
// default.
func (c *LoopController) FactoryFor(loop string) sched.Factory {
	params := map[string]string{}
	if c.DB != nil {
		params = c.DB.Effective(hints.TargetCompiler, hints.CatComputation)
	}
	chunk := hints.ParamInt(params, "chunk", 0)
	switch hints.ParamString(params, "strategy", "adaptive") {
	case "static":
		return sched.StaticBlock()
	case "cyclic":
		return sched.StaticCyclic(chunk)
	case "self":
		return sched.SelfSched(1)
	case "chunked":
		return sched.SelfSched(chunk)
	case "gss":
		return sched.GSS(chunk)
	case "factoring":
		return sched.Factoring(chunk)
	case "trapezoid":
		return sched.Trapezoid(chunk, 0)
	default:
		return c.Adaptive(loop).Factory()
	}
}

// Retune folds the last execution's profile into the per-loop tuner.
func (c *LoopController) Retune(loop string, n, p int) int {
	return c.Adaptive(loop).Retune(n, p)
}

// ---------------------------------------------------------------------
// 2. Dynamic load adaptation.

// LoadController decides when thread migration is worth its cost.
type LoadController struct {
	// ImbalanceThreshold is the max/mean queue-length ratio above which
	// global stealing is enabled (default 2).
	ImbalanceThreshold float64
}

// NewLoadController returns a controller with default thresholds.
func NewLoadController() *LoadController {
	return &LoadController{ImbalanceThreshold: 2}
}

// Imbalance returns max/mean of the per-locale pending-work counts
// (1.0 = perfectly balanced; 0 when idle).
func Imbalance(pending []int) float64 {
	if len(pending) == 0 {
		return 0
	}
	max, sum := 0, 0
	for _, p := range pending {
		if p > max {
			max = p
		}
		sum += p
	}
	if sum == 0 {
		return 0
	}
	mean := float64(sum) / float64(len(pending))
	return float64(max) / mean
}

// MigrationPlan is one recommended thread movement.
type MigrationPlan struct {
	From, To int
	Count    int
}

// Plan produces migrations that move surplus work from overloaded
// locales toward underloaded ones, one donor-receiver pair at a time,
// until every locale is within one task of the mean.
func (lc *LoadController) Plan(pending []int) []MigrationPlan {
	n := len(pending)
	if n < 2 {
		return nil
	}
	work := append([]int(nil), pending...)
	sum := 0
	for _, p := range work {
		sum += p
	}
	mean := sum / n
	var plans []MigrationPlan
	for {
		hi, lo := 0, 0
		for i := range work {
			if work[i] > work[hi] {
				hi = i
			}
			if work[i] < work[lo] {
				lo = i
			}
		}
		if work[hi]-mean <= 1 || mean-work[lo] < 1 {
			return plans
		}
		move := (work[hi] - work[lo]) / 2
		if surplus := work[hi] - mean; move > surplus {
			move = surplus
		}
		if move < 1 {
			return plans
		}
		work[hi] -= move
		work[lo] += move
		plans = append(plans, MigrationPlan{From: hi, To: lo, Count: move})
	}
}

// DecidePolicy maps the observed imbalance to a stealing policy name
// ("none", "local", "global") — the knob the runtime config exposes.
func (lc *LoadController) DecidePolicy(imbalance float64) string {
	switch {
	case imbalance > lc.ImbalanceThreshold:
		return "global"
	case imbalance > 1.2:
		return "local"
	default:
		return "none"
	}
}

// ---------------------------------------------------------------------
// 3. Locality adaptation.

// LocalityAction is a recommended data movement.
type LocalityAction struct {
	Obj  mem.ObjID
	Kind string // "migrate" or "replicate"
	To   mem.Locale
}

// String renders the action.
func (a LocalityAction) String() string {
	return fmt.Sprintf("%s obj%d -> locale %d", a.Kind, a.Obj, a.To)
}

// LocalityManager inspects the global-space access statistics and
// recommends object migration (write-heavy objects follow their
// writers) and replication (read-mostly objects are copied to their
// readers), preserving consistency via the directory's invalidation
// protocol.
type LocalityManager struct {
	Space *mem.Space
	// MinAccesses gates decisions: objects with fewer total accesses
	// since the last decay are left alone (default 8).
	MinAccesses int64
	// ReadMostlyRatio is the reads:writes ratio above which replication
	// is preferred over migration (default 4).
	ReadMostlyRatio float64
	// DisableReplication forces migration even for read-mostly objects
	// (the migrate-only ablation of EXP-A3).
	DisableReplication bool
}

// NewLocalityManager creates a manager over the space.
func NewLocalityManager(s *mem.Space) *LocalityManager {
	return &LocalityManager{Space: s, MinAccesses: 8, ReadMostlyRatio: 4}
}

// Analyze returns the recommended actions for all objects. It does not
// apply them; Rebalance does.
func (lm *LocalityManager) Analyze() []LocalityAction {
	var actions []LocalityAction
	for _, id := range lm.Space.Objects() {
		reads, writes := lm.Space.AccessCounts(id)
		var totalR, totalW int64
		top, topCount := mem.Locale(0), int64(-1)
		for l := range reads {
			totalR += reads[l]
			totalW += writes[l]
			if c := reads[l] + writes[l]; c > topCount {
				top, topCount = mem.Locale(l), c
			}
		}
		if totalR+totalW < lm.MinAccesses {
			continue
		}
		home := lm.Space.Home(id)
		readMostly := totalW == 0 || float64(totalR)/float64(max64(totalW, 1)) >= lm.ReadMostlyRatio
		if readMostly && !lm.DisableReplication {
			// Replicate at every non-home locale carrying a substantial
			// share of the reads — a multi-reader object wants a copy
			// at each reader, not just the hottest one.
			threshold := totalR / int64(2*len(reads))
			if threshold < 1 {
				threshold = 1
			}
			for l := range reads {
				loc := mem.Locale(l)
				if loc == home || reads[l] < threshold {
					continue
				}
				if !lm.Space.HasValidReplica(id, loc) {
					actions = append(actions, LocalityAction{Obj: id, Kind: "replicate", To: loc})
				}
			}
			continue
		}
		if top == home {
			continue
		}
		actions = append(actions, LocalityAction{Obj: id, Kind: "migrate", To: top})
	}
	return actions
}

// ReHome recovers the objects homed at lost locales: each one moves to
// the locale holding a valid replica (the cheapest survivor — a free
// promotion in the directory), or to fallback when no copy survived and
// the object must be rebuilt. The returned actions (Kind "rehome") have
// already been applied; cost is the total rebuild cost charged. This is
// the locality manager's failure-path counterpart to Rebalance: the
// cluster layer calls it when a node's eviction strands part of the
// locale space.
func (lm *LocalityManager) ReHome(lost []mem.Locale, fallback mem.Locale) ([]LocalityAction, int64) {
	if len(lost) == 0 {
		return nil, 0
	}
	dead := make(map[mem.Locale]bool, len(lost))
	for _, l := range lost {
		dead[l] = true
	}
	var (
		actions []LocalityAction
		cost    int64
	)
	for _, id := range lm.Space.Objects() {
		home := lm.Space.Home(id)
		if !dead[home] {
			continue
		}
		to := fallback
		for _, r := range lm.Space.Replicas(id) {
			if !dead[r] {
				to = r
				break
			}
		}
		c, _ := lm.Space.Rehome(id, to)
		cost += c
		actions = append(actions, LocalityAction{Obj: id, Kind: "rehome", To: to})
	}
	return actions, cost
}

// Rebalance applies Analyze's recommendations, returns them plus the
// total transfer cost charged by the directory, and decays the access
// counters so the next period starts fresh.
func (lm *LocalityManager) Rebalance() ([]LocalityAction, int64) {
	actions := lm.Analyze()
	var cost int64
	for _, a := range actions {
		switch a.Kind {
		case "migrate":
			cost += lm.Space.Migrate(a.Obj, a.To)
		case "replicate":
			cost += lm.Space.Replicate(a.Obj, a.To)
		}
	}
	lm.Space.DecayCounts()
	return actions, cost
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------------
// 4. Latency adaptation.

// LatencyController steers the latency-hiding machinery from observed
// latency EWMAs.
type LatencyController struct {
	Monitor *monitor.Monitor
	// MaxDepth bounds percolation depth (default 16).
	MaxDepth int
	// ParcelOverhead is the fixed cost (cycles) of shipping a parcel
	// and activating its handler, used by the fetch-vs-parcel rule.
	ParcelOverhead float64
}

// NewLatencyController creates a controller reading mon.
func NewLatencyController(mon *monitor.Monitor) *LatencyController {
	return &LatencyController{Monitor: mon, MaxDepth: 16, ParcelOverhead: 100}
}

// Depth recomputes the percolation depth from the stage-time and
// compute-time EWMAs (instrument names "percolate.stage" and
// "percolate.compute").
func (lc *LatencyController) Depth() int {
	stage := lc.Monitor.EWMA("percolate.stage", 0.2).Value()
	compute := lc.Monitor.EWMA("percolate.compute", 0.2).Value()
	return percolate.SuggestDepth(int64(stage), int64(compute), lc.MaxDepth)
}

// PreferParcel decides whether a computation touching bytes of remote
// data should move to the data (parcel) rather than fetch it: the
// parcel wins when its fixed overhead is below the cost of streaming
// the data over the observed per-byte latency.
func (lc *LatencyController) PreferParcel(bytes int, perByteLatency float64) bool {
	fetchCost := float64(bytes) * perByteLatency
	return fetchCost > lc.ParcelOverhead
}

// CrossoverBytes returns the data size at which parcels start winning
// under the observed per-byte latency.
func (lc *LatencyController) CrossoverBytes(perByteLatency float64) int {
	if perByteLatency <= 0 {
		return int(^uint(0) >> 1) // never
	}
	return int(lc.ParcelOverhead/perByteLatency) + 1
}
