package adapt

import (
	"testing"

	"repro/internal/mem"
)

// Edge tests for LocalityManager.Analyze: the thresholds and
// tie-breaks the serving data plane's locality loop steers by.

// TestLocalityMigrateVsReplicateBoundary probes the ReadMostlyRatio
// knife-edge: reads:writes exactly at the ratio replicates, one write
// more migrates.
func TestLocalityMigrateVsReplicateBoundary(t *testing.T) {
	run := func(reads, writes int) []LocalityAction {
		space := mem.NewSpace(2, nil)
		lm := NewLocalityManager(space)
		obj := space.Alloc(0, 64)
		for i := 0; i < reads; i++ {
			space.ReadAccess(1, obj, 0)
		}
		for i := 0; i < writes; i++ {
			space.WriteAccess(1, obj, 0)
		}
		return lm.Analyze()
	}
	// 16 reads : 4 writes = exactly ReadMostlyRatio (4): read-mostly,
	// so the remote reader gets a replica.
	at := run(16, 4)
	if len(at) != 1 || at[0].Kind != "replicate" || at[0].To != 1 {
		t.Errorf("ratio exactly at threshold: actions %v, want one replicate to locale 1", at)
	}
	// 16 reads : 5 writes < ratio: write activity dominates enough that
	// the object follows its (sole) accessor instead.
	below := run(16, 5)
	if len(below) != 1 || below[0].Kind != "migrate" || below[0].To != 1 {
		t.Errorf("ratio below threshold: actions %v, want one migrate to locale 1", below)
	}
	// Zero writes is read-mostly by definition, whatever the ratio says.
	zw := run(9, 0)
	if len(zw) != 1 || zw[0].Kind != "replicate" {
		t.Errorf("zero-write object: actions %v, want replicate", zw)
	}
}

// TestLocalityZeroAndSubThresholdAccess: untouched objects and objects
// under MinAccesses must produce no actions — the loop must not churn
// data nobody is using.
func TestLocalityZeroAndSubThresholdAccess(t *testing.T) {
	space := mem.NewSpace(4, nil)
	lm := NewLocalityManager(space)
	cold := space.Alloc(0, 64)
	warmish := space.Alloc(0, 64)
	for i := int64(0); i < lm.MinAccesses-1; i++ {
		space.ReadAccess(2, warmish, 0)
	}
	if acts := lm.Analyze(); len(acts) != 0 {
		t.Errorf("zero/sub-threshold objects produced actions: %v", acts)
	}
	// One more access tips warmish over MinAccesses; cold stays quiet.
	space.ReadAccess(2, warmish, 0)
	acts := lm.Analyze()
	if len(acts) != 1 || acts[0].Obj != warmish {
		t.Errorf("actions %v, want exactly one for the object at MinAccesses", acts)
	}
	_ = cold
}

// TestLocalitySingleLocaleNoop: with one locale there is nowhere to
// move anything — no actions regardless of traffic.
func TestLocalitySingleLocaleNoop(t *testing.T) {
	space := mem.NewSpace(1, nil)
	lm := NewLocalityManager(space)
	obj := space.Alloc(0, 64)
	for i := 0; i < 64; i++ {
		space.ReadAccess(0, obj, 0)
		space.WriteAccess(0, obj, 0)
	}
	if acts := lm.Analyze(); len(acts) != 0 {
		t.Errorf("single-locale space produced actions: %v", acts)
	}
}

// TestLocalityMigrateTieBreak: when two locales tie for the write-heavy
// top spot, the lowest locale wins deterministically (first strict
// maximum in locale order); a tie that includes the home stays put only
// if the home is that lowest locale.
func TestLocalityMigrateTieBreak(t *testing.T) {
	space := mem.NewSpace(4, nil)
	lm := NewLocalityManager(space)
	obj := space.Alloc(3, 64)
	for i := 0; i < 8; i++ {
		space.WriteAccess(1, obj, 0)
		space.WriteAccess(2, obj, 0)
	}
	acts := lm.Analyze()
	if len(acts) != 1 || acts[0].Kind != "migrate" || acts[0].To != 1 {
		t.Errorf("tied writers: actions %v, want migrate to the lowest tied locale 1", acts)
	}
	// Same tie, but the home is the lowest tied locale: staying put wins.
	space2 := mem.NewSpace(4, nil)
	lm2 := NewLocalityManager(space2)
	obj2 := space2.Alloc(1, 64)
	for i := 0; i < 8; i++ {
		space2.WriteAccess(1, obj2, 0)
		space2.WriteAccess(2, obj2, 0)
	}
	if acts := lm2.Analyze(); len(acts) != 0 {
		t.Errorf("home among tied writers: actions %v, want none", acts)
	}
}

// TestLocalityDisableReplicationForcesMigrate: the migrate-only
// ablation must turn a textbook replication candidate into a migration
// toward its hottest reader.
func TestLocalityDisableReplicationForcesMigrate(t *testing.T) {
	space := mem.NewSpace(4, nil)
	lm := NewLocalityManager(space)
	lm.DisableReplication = true
	obj := space.Alloc(0, 64)
	for i := 0; i < 32; i++ {
		space.ReadAccess(2, obj, 0)
	}
	space.ReadAccess(1, obj, 0)
	acts := lm.Analyze()
	if len(acts) != 1 || acts[0].Kind != "migrate" || acts[0].To != 2 {
		t.Errorf("migrate-only ablation: actions %v, want migrate to hottest reader 2", acts)
	}
}

// TestLocalityReplicateSkipsExistingReplicas: Analyze must not
// recommend replicas that already exist (idempotence — the loop runs
// forever and must converge, not spin).
func TestLocalityReplicateSkipsExistingReplicas(t *testing.T) {
	space := mem.NewSpace(4, nil)
	lm := NewLocalityManager(space)
	obj := space.Alloc(0, 64)
	for i := 0; i < 16; i++ {
		space.ReadAccess(1, obj, 0)
		space.ReadAccess(2, obj, 0)
	}
	first := lm.Analyze()
	if len(first) != 2 {
		t.Fatalf("two remote readers: actions %v, want two replicates", first)
	}
	for _, a := range first {
		space.Replicate(a.Obj, a.To)
	}
	if again := lm.Analyze(); len(again) != 0 {
		t.Errorf("replicas installed, Analyze still wants: %v", again)
	}
}

func TestReHomeMovesLostObjectsToReplicasOrFallback(t *testing.T) {
	s := mem.NewSpace(4, mem.UniformCost{Cost: 7})
	lm := NewLocalityManager(s)

	replicated := s.Alloc(1, 32) // homed on the doomed locale, copy at 2
	s.Replicate(replicated, 2)
	bare := s.Alloc(1, 32) // homed on the doomed locale, no copies
	safe := s.Alloc(0, 32) // homed elsewhere — must not move

	actions, cost := lm.ReHome([]mem.Locale{1}, 3)
	if len(actions) != 2 {
		t.Fatalf("ReHome produced %d actions, want 2: %v", len(actions), actions)
	}
	for _, a := range actions {
		if a.Kind != "rehome" {
			t.Fatalf("action kind %q, want rehome", a.Kind)
		}
	}
	if got := s.Home(replicated); got != 2 {
		t.Fatalf("replicated object homed at %d, want promoted replica at 2", got)
	}
	if got := s.Home(bare); got != 3 {
		t.Fatalf("bare object homed at %d, want fallback 3", got)
	}
	if got := s.Home(safe); got != 0 {
		t.Fatalf("unaffected object moved to %d", got)
	}
	if cost == 0 {
		t.Fatal("rebuilding the bare object should have charged cost")
	}
	st := s.Stats()
	if st.Rehomes != 2 || st.RehomePromotions != 1 {
		t.Fatalf("stats = %+v, want Rehomes=2 RehomePromotions=1", st)
	}
}

func TestReHomeNoLostLocalesIsNoop(t *testing.T) {
	s := mem.NewSpace(2, mem.UniformCost{Cost: 1})
	lm := NewLocalityManager(s)
	s.Alloc(0, 8)
	if actions, cost := lm.ReHome(nil, 1); actions != nil || cost != 0 {
		t.Fatalf("ReHome(nil) = %v, %d — want no-op", actions, cost)
	}
}
