package adapt

import (
	"testing"

	"repro/internal/hints"
	"repro/internal/mem"
	"repro/internal/monitor"
)

func TestImbalance(t *testing.T) {
	if v := Imbalance([]int{5, 5, 5, 5}); v != 1 {
		t.Errorf("balanced = %v, want 1", v)
	}
	if v := Imbalance([]int{20, 0, 0, 0}); v != 4 {
		t.Errorf("all-on-one = %v, want 4", v)
	}
	if v := Imbalance(nil); v != 0 {
		t.Errorf("empty = %v, want 0", v)
	}
	if v := Imbalance([]int{0, 0}); v != 0 {
		t.Errorf("idle = %v, want 0", v)
	}
}

func TestPlanMovesSurplus(t *testing.T) {
	lc := NewLoadController()
	plans := lc.Plan([]int{16, 0, 0, 0})
	if len(plans) == 0 {
		t.Fatal("expected migrations for skewed load")
	}
	// Apply the plan and check the result is balanced.
	work := []int{16, 0, 0, 0}
	for _, p := range plans {
		work[p.From] -= p.Count
		work[p.To] += p.Count
	}
	if Imbalance(work) > 1.8 {
		t.Errorf("after plan imbalance = %v, work = %v", Imbalance(work), work)
	}
}

func TestPlanBalancedNoop(t *testing.T) {
	lc := NewLoadController()
	if plans := lc.Plan([]int{5, 5, 5}); len(plans) != 0 {
		t.Errorf("balanced load should need no migrations, got %v", plans)
	}
	if plans := lc.Plan([]int{3}); plans != nil {
		t.Error("single locale cannot migrate")
	}
}

func TestDecidePolicy(t *testing.T) {
	lc := NewLoadController()
	if p := lc.DecidePolicy(1.0); p != "none" {
		t.Errorf("balanced -> %q, want none", p)
	}
	if p := lc.DecidePolicy(1.5); p != "local" {
		t.Errorf("mild -> %q, want local", p)
	}
	if p := lc.DecidePolicy(4.0); p != "global" {
		t.Errorf("severe -> %q, want global", p)
	}
}

func newSpace() *mem.Space {
	return mem.NewSpace(4, mem.RingCost{LocalLat: 10, HopLat: 40, ByteCost: 1})
}

func TestLocalityMigratesWriteHeavy(t *testing.T) {
	s := newSpace()
	lm := NewLocalityManager(s)
	id := s.Alloc(0, 64)
	for i := 0; i < 10; i++ {
		s.WriteAccess(2, id, 8)
		s.ReadAccess(2, id, 8)
	}
	actions, cost := lm.Rebalance()
	if len(actions) != 1 || actions[0].Kind != "migrate" || actions[0].To != 2 {
		t.Fatalf("actions = %v, want migrate to 2", actions)
	}
	if cost <= 0 {
		t.Error("migration should have cost")
	}
	if s.Home(id) != 2 {
		t.Errorf("home = %d after rebalance, want 2", s.Home(id))
	}
}

func TestLocalityReplicatesReadMostly(t *testing.T) {
	s := newSpace()
	lm := NewLocalityManager(s)
	id := s.Alloc(0, 64)
	for i := 0; i < 20; i++ {
		s.ReadAccess(3, id, 8)
	}
	actions, _ := lm.Rebalance()
	if len(actions) != 1 || actions[0].Kind != "replicate" || actions[0].To != 3 {
		t.Fatalf("actions = %v, want replicate to 3", actions)
	}
	if !s.HasValidReplica(id, 3) {
		t.Error("replica not installed")
	}
	if s.Home(id) != 0 {
		t.Error("read-mostly object should keep its home")
	}
}

func TestLocalityLeavesColdObjectsAlone(t *testing.T) {
	s := newSpace()
	lm := NewLocalityManager(s)
	id := s.Alloc(0, 64)
	s.ReadAccess(1, id, 8) // below MinAccesses
	if actions := lm.Analyze(); len(actions) != 0 {
		t.Errorf("cold object produced actions: %v", actions)
	}
}

func TestLocalityHomeDominantNoop(t *testing.T) {
	s := newSpace()
	lm := NewLocalityManager(s)
	id := s.Alloc(1, 64)
	for i := 0; i < 20; i++ {
		s.ReadAccess(1, id, 8)
		s.WriteAccess(1, id, 8)
	}
	if actions := lm.Analyze(); len(actions) != 0 {
		t.Errorf("home-dominant object produced actions: %v", actions)
	}
}

func TestLocalityActionString(t *testing.T) {
	a := LocalityAction{Obj: 3, Kind: "migrate", To: 2}
	if a.String() != "migrate obj3 -> locale 2" {
		t.Errorf("String = %q", a.String())
	}
}

func TestLatencyDepthTracksEWMA(t *testing.T) {
	mon := monitor.New()
	lc := NewLatencyController(mon)
	mon.EWMA("percolate.stage", 0.2).Observe(800)
	mon.EWMA("percolate.compute", 0.2).Observe(100)
	d := lc.Depth()
	if d < 8 {
		t.Errorf("depth = %d, want >= 8 when staging dominates", d)
	}
	mon2 := monitor.New()
	lc2 := NewLatencyController(mon2)
	mon2.EWMA("percolate.stage", 0.2).Observe(10)
	mon2.EWMA("percolate.compute", 0.2).Observe(1000)
	if d := lc2.Depth(); d != 1 {
		t.Errorf("depth = %d, want 1 when compute dominates", d)
	}
}

func TestPreferParcelCrossover(t *testing.T) {
	lc := NewLatencyController(monitor.New())
	lc.ParcelOverhead = 100
	if lc.PreferParcel(10, 1) {
		t.Error("small data should be fetched")
	}
	if !lc.PreferParcel(1000, 1) {
		t.Error("large data should move the work instead")
	}
	x := lc.CrossoverBytes(1)
	if !lc.PreferParcel(x, 1) || lc.PreferParcel(x-2, 1) {
		t.Errorf("crossover %d inconsistent with PreferParcel", x)
	}
	if lc.CrossoverBytes(0) < 1<<40 {
		t.Error("zero latency should mean never prefer parcels")
	}
}

func TestLoopControllerStrategies(t *testing.T) {
	db := hints.NewDB()
	c := NewLoopController(db)
	for _, strat := range []string{"static", "cyclic", "self", "chunked", "gss", "factoring", "trapezoid", "adaptive"} {
		h := &hints.Hint{
			Name: "s", Target: hints.TargetCompiler, Category: hints.CatComputation,
			Priority: 50, Params: map[string]string{"strategy": strat, "chunk": "4"},
		}
		if err := db.AddHint(h); err != nil {
			t.Fatal(err)
		}
		f := c.FactoryFor("loop1")
		s := f(100, 4)
		// Drain to prove the factory produced a working scheduler.
		covered := 0
		for w := 0; w < 4; w++ {
			for {
				ch, ok := s.Next(w)
				if !ok {
					break
				}
				covered += ch.Size()
			}
		}
		if covered != 100 {
			t.Errorf("strategy %s covered %d, want 100", strat, covered)
		}
	}
}

func TestLoopControllerNilDBDefaultsToAdaptive(t *testing.T) {
	c := NewLoopController(nil)
	f := c.FactoryFor("loop1")
	s := f(64, 4)
	if _, ok := s.Next(0); !ok {
		t.Error("default factory should produce work")
	}
	if c.Adaptive("loop1") != c.Adaptive("loop1") {
		t.Error("per-loop tuner should be stable")
	}
	if got := c.Retune("loop1", 64, 4); got < 1 {
		t.Errorf("Retune = %d", got)
	}
}
