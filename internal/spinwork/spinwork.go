// Package spinwork is the shared deterministic CPU-burn used wherever
// native wall-clock experiments need synthetic work: the experiment
// harness, the serve layer's modeled cold-start charge, and the
// htserved handler bodies. One unit is 400 LCG steps (~0.5us on a
// laptop-class core). Keeping a single copy is load-bearing: the V1
// cold-vs-warm comparison only holds if the server's charge and the
// harness's "modeled cost" burn identical work per unit.
package spinwork

import "sync/atomic"

// Spin burns roughly units of deterministic CPU work and returns the
// LCG state so callers can assert determinism.
func Spin(units int64) int64 {
	var x int64 = 1
	for i := int64(0); i < units*400; i++ {
		x = x*6364136223846793005 + 1442695040888963407
	}
	return x
}

var sink atomic.Int64

// Work is Spin with a global sink so the compiler cannot elide it.
func Work(units int64) {
	sink.Add(Spin(units))
}
