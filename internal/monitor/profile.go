package monitor

import (
	"math"
	"sync"
)

// LoopProfile accumulates per-chunk timing for one parallel loop: chunk
// sizes and their execution durations. The loop-parallelism adaptation
// controller derives the mean per-iteration cost and its coefficient of
// variation from it to retune grain size, as Section 2's "loop
// parallelism adaptation" prescribes.
type LoopProfile struct {
	mu       sync.Mutex
	chunks   int64
	iters    int64
	sumDur   float64
	sumIter  float64 // sum of per-iteration costs (duration/size)
	sumIter2 float64
}

// RecordChunk records that a chunk of size iterations took dur units.
func (p *LoopProfile) RecordChunk(size int, dur float64) {
	if size <= 0 {
		return
	}
	per := dur / float64(size)
	p.mu.Lock()
	p.chunks++
	p.iters += int64(size)
	p.sumDur += dur
	p.sumIter += per
	p.sumIter2 += per * per
	p.mu.Unlock()
}

// Chunks returns the number of recorded chunks.
func (p *LoopProfile) Chunks() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.chunks
}

// Iters returns the total iterations recorded.
func (p *LoopProfile) Iters() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.iters
}

// MeanIterCost returns the mean per-iteration cost across chunks.
func (p *LoopProfile) MeanIterCost() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.chunks == 0 {
		return 0
	}
	return p.sumIter / float64(p.chunks)
}

// IterCostCV returns the coefficient of variation of per-iteration cost
// across chunks — the imbalance signal for grain adaptation.
func (p *LoopProfile) IterCostCV() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.chunks < 2 {
		return 0
	}
	n := float64(p.chunks)
	mean := p.sumIter / n
	if mean == 0 {
		return 0
	}
	variance := (p.sumIter2 - n*mean*mean) / (n - 1)
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance) / mean
}

// Reset clears the profile for the next execution phase.
func (p *LoopProfile) Reset() {
	p.mu.Lock()
	p.chunks, p.iters, p.sumDur, p.sumIter, p.sumIter2 = 0, 0, 0, 0, 0
	p.mu.Unlock()
}
