// Package monitor implements the runtime performance-monitoring
// methodology of Section 4.2: cheap always-on counters, exponentially
// weighted latency estimators, histograms of access patterns, and
// per-loop iteration profiles. Its snapshots are the "dynamic facts"
// that drive the dynamic compiler and the adaptivity controllers
// (internal/adapt), closing the feedback loop of Fig. 1.
package monitor

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Monitor is a registry of named instruments. All instruments are safe
// for concurrent use; lookup is amortized by caching the returned
// instrument at the call site.
type Monitor struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	ewmas    map[string]*EWMA
	hists    map[string]*Histogram
}

// New creates an empty monitor.
func New() *Monitor {
	return &Monitor{
		counters: make(map[string]*Counter),
		ewmas:    make(map[string]*EWMA),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (m *Monitor) Counter(name string) *Counter {
	m.mu.RLock()
	c, ok := m.counters[name]
	m.mu.RUnlock()
	if ok {
		return c
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok = m.counters[name]; ok {
		return c
	}
	c = &Counter{}
	m.counters[name] = c
	return c
}

// EWMA returns the named estimator, creating it with the given alpha on
// first use (later alphas are ignored).
func (m *Monitor) EWMA(name string, alpha float64) *EWMA {
	m.mu.RLock()
	e, ok := m.ewmas[name]
	m.mu.RUnlock()
	if ok {
		return e
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok = m.ewmas[name]; ok {
		return e
	}
	e = NewEWMA(alpha)
	m.ewmas[name] = e
	return e
}

// Histogram returns the named histogram, creating it with the given
// bucket bounds on first use.
func (m *Monitor) Histogram(name string, bounds []float64) *Histogram {
	m.mu.RLock()
	h, ok := m.hists[name]
	m.mu.RUnlock()
	if ok {
		return h
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if h, ok = m.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	m.hists[name] = h
	return h
}

// Snapshot captures current values of every instrument.
func (m *Monitor) Snapshot() Report {
	m.mu.RLock()
	defer m.mu.RUnlock()
	r := Report{
		Counters: make(map[string]int64, len(m.counters)),
		EWMAs:    make(map[string]float64, len(m.ewmas)),
		Hists:    make(map[string]HistView, len(m.hists)),
	}
	for n, c := range m.counters {
		r.Counters[n] = c.Value()
	}
	for n, e := range m.ewmas {
		r.EWMAs[n] = e.Value()
	}
	for n, h := range m.hists {
		r.Hists[n] = h.View()
	}
	return r
}

// Report is a point-in-time view of the monitor, consumed by the
// dynamic compiler, the adaptivity controllers, and the serve layer's
// metrics export.
type Report struct {
	Counters map[string]int64
	EWMAs    map[string]float64
	Hists    map[string]HistView
}

// Names returns the counter names in sorted order (for stable output).
func (r Report) Names() []string {
	names := make([]string, 0, len(r.Counters))
	for n := range r.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// EWMA is an exponentially weighted moving average updated lock-free.
// The paper's latency-adaptation controller uses EWMAs of observed
// memory latency to steer percolation depth and scheduling policy.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64 // float64 bits; zero means "no observation yet"
	n     atomic.Int64
}

// NewEWMA creates an estimator with smoothing factor alpha in (0,1].
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.2
	}
	return &EWMA{alpha: alpha}
}

// Observe folds a new sample into the average.
func (e *EWMA) Observe(x float64) {
	e.n.Add(1)
	for {
		old := e.bits.Load()
		var next float64
		if old == 0 && e.n.Load() == 1 {
			next = x
		} else {
			cur := math.Float64frombits(old)
			next = cur + e.alpha*(x-cur)
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// Value returns the current estimate (0 before any observation).
func (e *EWMA) Value() float64 {
	return math.Float64frombits(e.bits.Load())
}

// Count returns the number of observations folded in.
func (e *EWMA) Count() int64 { return e.n.Load() }

// Histogram counts observations into fixed buckets; bucket i counts
// samples <= bounds[i], with one overflow bucket at the end. It backs
// the access-pattern summaries fed to the knowledge database.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64
}

// NewHistogram creates a histogram with the given ascending bounds.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe adds a sample.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x)
	h.counts[i].Add(1)
}

// Bounds returns a copy of the ascending bucket bounds.
func (h *Histogram) Bounds() []float64 {
	return append([]float64(nil), h.bounds...)
}

// HistView is a point-in-time copy of one histogram: Counts[i] counts
// samples <= Bounds[i], with the final entry the overflow bucket. It is
// the JSON-friendly shape exported by metrics endpoints.
type HistView struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
}

// Total sums the view's bucket counts.
func (v HistView) Total() int64 {
	var t int64
	for _, c := range v.Counts {
		t += c
	}
	return t
}

// View captures the histogram's current state.
func (h *Histogram) View() HistView {
	return HistView{Bounds: h.Bounds(), Counts: h.Counts()}
}

// Counts returns a copy of the bucket counts (len(bounds)+1 entries).
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Total returns the total number of observations.
func (h *Histogram) Total() int64 {
	var t int64
	for i := range h.counts {
		t += h.counts[i].Load()
	}
	return t
}

// QuantileUpperBound returns an upper bound for the q-quantile using the
// bucket bounds (+Inf for the overflow bucket).
func (h *Histogram) QuantileUpperBound(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return math.NaN()
	}
	want := int64(math.Ceil(q * float64(total)))
	if want < 1 {
		want = 1
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= want {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return math.Inf(1)
		}
	}
	return math.Inf(1)
}
