package monitor

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestCounterConcurrent(t *testing.T) {
	m := New()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := m.Counter("x")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if v := m.Counter("x").Value(); v != 16000 {
		t.Errorf("counter = %d, want 16000", v)
	}
}

func TestCounterIdentity(t *testing.T) {
	m := New()
	if m.Counter("a") != m.Counter("a") {
		t.Error("same name should return same counter")
	}
	if m.Counter("a") == m.Counter("b") {
		t.Error("different names should return different counters")
	}
}

func TestEWMAFirstObservation(t *testing.T) {
	e := NewEWMA(0.5)
	e.Observe(10)
	if v := e.Value(); v != 10 {
		t.Errorf("first observation value = %v, want 10", v)
	}
}

func TestEWMAConverges(t *testing.T) {
	e := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if v := e.Value(); math.Abs(v-42) > 1e-6 {
		t.Errorf("EWMA = %v, want 42", v)
	}
	if e.Count() != 100 {
		t.Errorf("Count = %d", e.Count())
	}
}

func TestEWMATracksShift(t *testing.T) {
	e := NewEWMA(0.5)
	for i := 0; i < 20; i++ {
		e.Observe(10)
	}
	for i := 0; i < 20; i++ {
		e.Observe(100)
	}
	if v := e.Value(); math.Abs(v-100) > 1 {
		t.Errorf("EWMA after shift = %v, want near 100", v)
	}
}

func TestEWMABadAlphaDefaulted(t *testing.T) {
	e := NewEWMA(-1)
	e.Observe(5)
	if e.Value() != 5 {
		t.Error("estimator with defaulted alpha broken")
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(5)
	h.Observe(10)
	h.Observe(50)
	h.Observe(1000)
	c := h.Counts()
	if c[0] != 2 || c[1] != 1 || c[2] != 1 {
		t.Errorf("counts = %v, want [2 1 1]", c)
	}
	if h.Total() != 4 {
		t.Errorf("Total = %d", h.Total())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4, 8})
	for i := 0; i < 90; i++ {
		h.Observe(1.5) // bucket <=2
	}
	for i := 0; i < 10; i++ {
		h.Observe(100) // overflow
	}
	if q := h.QuantileUpperBound(0.5); q != 2 {
		t.Errorf("p50 bound = %v, want 2", q)
	}
	if q := h.QuantileUpperBound(0.99); !math.IsInf(q, 1) {
		t.Errorf("p99 bound = %v, want +Inf", q)
	}
	empty := NewHistogram([]float64{1})
	if !math.IsNaN(empty.QuantileUpperBound(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
}

func TestHistogramUnsortedBounds(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10})
	h.Observe(5)
	c := h.Counts()
	if c[1] != 1 { // 1 < 5 <= 10
		t.Errorf("counts = %v, want sample in bucket 1", c)
	}
}

func TestSnapshot(t *testing.T) {
	m := New()
	m.Counter("steals").Add(7)
	m.EWMA("lat", 0.2).Observe(33)
	r := m.Snapshot()
	if r.Counters["steals"] != 7 {
		t.Errorf("snapshot counter = %d", r.Counters["steals"])
	}
	if r.EWMAs["lat"] != 33 {
		t.Errorf("snapshot ewma = %v", r.EWMAs["lat"])
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "steals" {
		t.Errorf("Names = %v", names)
	}
}

func TestLoopProfile(t *testing.T) {
	var p LoopProfile
	p.RecordChunk(10, 100) // 10 per iter
	p.RecordChunk(10, 100)
	if m := p.MeanIterCost(); m != 10 {
		t.Errorf("MeanIterCost = %v, want 10", m)
	}
	if cv := p.IterCostCV(); cv != 0 {
		t.Errorf("CV = %v, want 0 for uniform chunks", cv)
	}
	p.RecordChunk(10, 1000) // 100 per iter: now imbalanced
	if cv := p.IterCostCV(); cv <= 0 {
		t.Errorf("CV = %v, want > 0 after imbalance", cv)
	}
	if p.Iters() != 30 || p.Chunks() != 3 {
		t.Errorf("Iters/Chunks = %d/%d", p.Iters(), p.Chunks())
	}
	p.Reset()
	if p.Chunks() != 0 || p.MeanIterCost() != 0 {
		t.Error("Reset did not clear profile")
	}
}

func TestLoopProfileIgnoresEmptyChunks(t *testing.T) {
	var p LoopProfile
	p.RecordChunk(0, 50)
	if p.Chunks() != 0 {
		t.Error("zero-size chunk should be ignored")
	}
}

func TestEWMAConcurrent(t *testing.T) {
	e := NewEWMA(0.1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				e.Observe(50)
			}
		}()
	}
	wg.Wait()
	if v := e.Value(); math.Abs(v-50) > 1e-6 {
		t.Errorf("concurrent EWMA = %v, want 50", v)
	}
}

func TestHistogramPropertyTotalMatches(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram([]float64{0, 1, 10})
		for _, s := range samples {
			h.Observe(s)
		}
		return h.Total() == int64(len(samples))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramViewAndBounds(t *testing.T) {
	h := NewHistogram([]float64{10, 100})
	h.Observe(5)
	h.Observe(50)
	h.Observe(500)
	v := h.View()
	if len(v.Bounds) != 2 || len(v.Counts) != 3 {
		t.Fatalf("view shape = %d bounds, %d counts", len(v.Bounds), len(v.Counts))
	}
	if v.Counts[0] != 1 || v.Counts[1] != 1 || v.Counts[2] != 1 {
		t.Errorf("view counts = %v", v.Counts)
	}
	if v.Total() != 3 {
		t.Errorf("view total = %d, want 3", v.Total())
	}
	// The view is a copy: later observations must not leak into it.
	h.Observe(5)
	if v.Counts[0] != 1 {
		t.Error("HistView aliases live histogram state")
	}
	b := h.Bounds()
	b[0] = -1
	if h.Bounds()[0] != 10 {
		t.Error("Bounds returned aliased storage")
	}
}

func TestSnapshotIncludesHistograms(t *testing.T) {
	m := New()
	m.Histogram("lat", []float64{1, 2}).Observe(1.5)
	var wg sync.WaitGroup
	// Observers racing a snapshot: the -race guarantee metrics export
	// depends on.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.Histogram("lat", []float64{1, 2}).Observe(float64(j % 3))
			}
		}()
	}
	r := m.Snapshot()
	wg.Wait()
	v, ok := r.Hists["lat"]
	if !ok {
		t.Fatal("snapshot missing histogram")
	}
	if v.Total() < 1 {
		t.Errorf("histogram view total = %d, want >= 1", v.Total())
	}
}
