// Command c64sim exercises the Cyclops-64-like simulator standalone: it
// runs a configurable microbenchmark (parallel tasklets hammering the
// memory hierarchy) and prints virtual-time metrics, the quickest way
// to inspect how latencies, bank counts and thread-unit counts shape
// contention — the "function-accurate simulator" of Section 5.1 as a
// tool.
//
// Usage:
//
//	c64sim [-nodes N] [-units N] [-dram CYCLES] [-banks N] [-tasklets N] [-region sram|dram] [-remote]
package main

import (
	"flag"
	"fmt"

	"repro/internal/c64"
)

func main() {
	nodes := flag.Int("nodes", 1, "number of nodes")
	units := flag.Int("units", 16, "thread units per node")
	dram := flag.Int64("dram", 80, "DRAM latency (cycles)")
	banks := flag.Int("banks", 4, "DRAM banks")
	tasklets := flag.Int("tasklets", 64, "tasklets to spawn on node 0")
	accesses := flag.Int("accesses", 32, "memory accesses per tasklet")
	regionFlag := flag.String("region", "dram", "memory region: sram or dram")
	remote := flag.Bool("remote", false, "access node 1 instead of node 0 (needs -nodes >= 2)")
	flag.Parse()

	cfg := c64.MultiNodeConfig(*nodes)
	cfg.UnitsPerNode = *units
	cfg.DRAMLat = *dram
	cfg.DRAMBanks = *banks
	m := c64.New(cfg)

	region := c64.DRAM
	if *regionFlag == "sram" {
		region = c64.SRAM
	}
	homeNode := 0
	if *remote {
		if *nodes < 2 {
			fmt.Println("c64sim: -remote needs -nodes >= 2")
			return
		}
		homeNode = 1
	}

	for t := 0; t < *tasklets; t++ {
		t := t
		m.Spawn(0, func(tu *c64.TU) {
			for a := 0; a < *accesses; a++ {
				tu.Load(c64.Addr{Node: homeNode, Region: region, Line: int64(t**accesses + a)}, 8)
				tu.Compute(10)
			}
		})
	}
	end := m.MustRun()
	met := m.Metrics()
	fmt.Printf("config: nodes=%d units=%d dram=%dcy banks=%d region=%s remote=%v\n",
		*nodes, *units, *dram, *banks, region, *remote)
	fmt.Printf("tasklets:      %d x %d accesses\n", *tasklets, *accesses)
	fmt.Printf("virtual time:  %d cycles\n", end)
	fmt.Printf("utilization:   %.1f%%\n", 100*m.Utilization())
	fmt.Printf("loads/stores:  %d / %d\n", met.Loads, met.Stores)
	fmt.Printf("bank wait:     %d cycles (queueing)\n", met.BankWait)
	fmt.Printf("stall cycles:  %d\n", met.StallCycles)
	fmt.Printf("remote acc:    %d, net msgs: %d\n", met.RemoteAcc, met.NetMessages)
	fmt.Printf("queued spawns: %d (tasklets that waited for a unit)\n", met.Queued)
}
