// Command htserved runs the parcel-driven job service layer
// (internal/serve) against a synthetic open-loop load generator and
// reports throughput, latency quantiles, shed rate, and cold-vs-warm
// first-request latency. It is the serving-path harness: sharded
// admission, request batching, deadline shedding, and percolation
// warm-up, all on one shared litlx.System. Tenants are driven through
// the v2 handle API (identity resolved once at registration); -burst
// admits each wakeup's arrivals through the shard-grouped SubmitMany
// path.
//
// -adapt closes the adaptivity loop (per-shard adaptive batch sizing,
// the stealing rebalancer, priority-aware overload shedding) and
// -scenario swaps the wall-clock generator for one of the deterministic
// seeded scripts (bursty | ramp | hotkey | sameshard | localhot), so
// one command line compares static and adaptive configs on identical
// traffic. -locality (requires -adapt) engages the locale-aware data
// plane on top: each tenant registers -objects data objects in the
// shared space (the first quarter homed together at locale 0, the rest
// round-robin), requests routed by their declared working set's home,
// batches staged ahead of execution, and the locality loop migrating
// and replicating hot objects; the localhot scenario concentrates
// traffic on the locale-0 objects to show it off.
//
// -compile (requires -adapt) engages the continuous-compilation
// controller: per-tenant key sketches on the admission path, hot-key
// fast paths (each tenant's specialized handler form, a quarter of the
// general handler's cost), and learned fan-out scatter plans. The
// shift scenario — a hot-key regime change at the midpoint — is the
// drift traffic it exists for. -hints-file persists the learned policy
// as a hints script at exit and loads it at startup when present, so a
// second run starts warm (the paper's knowledge database surviving
// recompilation).
//
// -pipeline swaps the single-request generators for open-loop dataflow
// flows: a dedicated tenant compiles a 3-stage fan-out pipeline (parse
// a hot locale-0 document, enrich -fan parts against element blocks on
// the other locales, aggregate into a locale-0 result), every stage
// routed by its declared working set, and the report covers whole
// flows plus per-stage done/shed/steal/locality accounting.
//
// -listen turns the process into one node of a real cluster
// (internal/cluster) on the TCP parcel transport: -join enters an
// existing cluster through any member, -nodes is the membership the
// node waits for before driving load, and -rate 0 hosts the node's
// locale range without generating flows. See cluster.go and the README
// "Cluster" section for the three-shell quickstart.
//
// Examples:
//
//	htserved -rate 5000 -tenants 64 -shards 8 -duration 2s
//	htserved -scenario hotkey -hotfrac 0.8 -adapt -rate 8000 -duration 2s
//	htserved -scenario localhot -adapt -locality -locales 2 -rate 4000 -duration 2s
//	htserved -pipeline -fan 4 -locales 2 -rate 1000 -duration 2s
//	htserved -listen 127.0.0.1:7101 -nodes 2 -locales 64 -rate 0 -duration 60s
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
	"os"
	"time"

	"repro/internal/hints"
	"repro/internal/litlx"
	"repro/internal/mem"
	"repro/internal/serve"
	"repro/internal/spinwork"
	"repro/internal/stats"
)

func main() {
	var (
		rate     = flag.Float64("rate", 5000, "offered load, jobs/second (open loop)")
		duration = flag.Duration("duration", 2*time.Second, "load generation time")
		tenants  = flag.Int("tenants", 64, "tenant count")
		shards   = flag.Int("shards", 8, "admission shards / dispatcher LGTs")
		depth    = flag.Int("depth", 256, "per-shard queue bound")
		batch    = flag.Int("batch", 32, "max jobs per dispatcher wakeup")
		locales  = flag.Int("locales", 2, "litlx locales")
		workers  = flag.Int("workers", 8, "SGT workers per locale")
		work     = flag.Int64("work", 200, "handler cost in spin units (~0.5us each)")
		skew     = flag.Float64("skew", 1.0, "Zipf exponent over tenants (0 = uniform)")
		keys     = flag.Uint64("keys", 4096, "key space per tenant")
		tight    = flag.Duration("tight", 10*time.Millisecond, "tight deadline")
		loose    = flag.Duration("loose", 100*time.Millisecond, "loose deadline (0 = none)")
		tfrac    = flag.Float64("tightfrac", 0.5, "fraction of jobs with the tight deadline")
		imgKB    = flag.Int("image-kb", 1024, "tenant handler code image size (KB)")
		warmFrac = flag.Float64("warmfrac", 0.5, "fraction of tenants percolated at registration")
		burst    = flag.Bool("burst", false, "admit each wakeup's arrivals as shard-grouped bursts (SubmitMany)")
		seed     = flag.Uint64("seed", 1, "generator seed")
		adapt    = flag.Bool("adapt", false, "enable the adaptivity loop (adaptive batching, shard stealing, overload shedding)")
		scenario = flag.String("scenario", "", "play a deterministic scenario script instead of the open-loop generator: bursty | ramp | hotkey | sameshard | localhot | shift")
		hotFrac  = flag.Float64("hotfrac", 0.8, "hot-key fraction for -scenario hotkey, hot-object fraction for -scenario localhot and open-loop -locality")
		locality = flag.Bool("locality", false, "engage the data plane: working-set routing, batch staging, and the locality loop (requires -adapt)")
		compile  = flag.Bool("compile", false, "engage the continuous-compilation controller: key sketches, hot-key fast paths, learned scatter plans (requires -adapt)")
		hintsF   = flag.String("hints-file", "", "persist the learned policy to this hints script at exit, loading it first when it exists (requires -compile)")
		objects  = flag.Int("objects", 16, "data objects per tenant for -locality / -scenario localhot")
		pipeline = flag.Bool("pipeline", false, "drive 3-stage fan-out dataflow flows (parse -> enrich -> aggregate) through Tenant.SubmitFlow; stages route by their declared working sets")
		fan      = flag.Int("fan", 4, "fan-out width for -pipeline flows")
		observe  = flag.Float64("observe", 0, "flow-trace sample rate in (0,1] (0 = tracing off); sampled flows record span trees in the flight recorder")
		ring     = flag.Int("ring", 256, "flight-recorder capacity (retained flow traces; shed/failed flows retained preferentially)")
		httpAddr = flag.String("http", "", "serve debug endpoints on this address (/debug/serve/metrics, /debug/serve/trace, /debug/vars, /debug/pprof)")
		dumpTr   = flag.Bool("dump-traces", false, "dump the flight recorder (text span trees) to stderr on shutdown (requires -observe > 0)")
		listen   = flag.String("listen", "", "cluster mode: host:port this node's parcel transport listens on")
		join     = flag.String("join", "", "cluster mode: address of a running member to join (requires -listen)")
		nodes    = flag.Int("nodes", 1, "cluster mode: expected member count; the node waits for the cluster to reach it before driving load")
		detEvery = flag.Duration("detect-every", 250*time.Millisecond, "cluster mode: heartbeat probe period for the failure detector (0 = detector off)")
		detMiss  = flag.Int("detect-misses", 3, "cluster mode: consecutive missed heartbeats before a member is evicted")
		flowTO   = flag.Duration("flow-timeout", 5*time.Second, "cluster mode: origin-side recovery timer per shipped stage; a flow stuck longer re-routes to the current owner (negative = recovery off)")
	)
	flag.Parse()

	if *tenants < 1 {
		fmt.Fprintln(os.Stderr, "htserved: -tenants must be >= 1")
		os.Exit(2)
	}
	if *join != "" && *listen == "" {
		fmt.Fprintln(os.Stderr, "htserved: -join requires -listen (a joining node must be reachable itself)")
		os.Exit(2)
	}
	if *nodes < 1 {
		fmt.Fprintln(os.Stderr, "htserved: -nodes must be >= 1")
		os.Exit(2)
	}
	if *nodes > 1 && *listen == "" {
		fmt.Fprintln(os.Stderr, "htserved: -nodes > 1 requires -listen (a multi-node cluster needs a transport address)")
		os.Exit(2)
	}
	if *rate < 0 || (*rate == 0 && *listen == "") {
		fmt.Fprintln(os.Stderr, "htserved: -rate must be > 0 (0 is allowed only in cluster mode: host without driving load)")
		os.Exit(2)
	}
	if *duration <= 0 {
		fmt.Fprintln(os.Stderr, "htserved: -duration must be > 0")
		os.Exit(2)
	}
	if *locales < 1 {
		fmt.Fprintln(os.Stderr, "htserved: -locales must be >= 1")
		os.Exit(2)
	}
	if *shards < 1 {
		fmt.Fprintln(os.Stderr, "htserved: -shards must be >= 1")
		os.Exit(2)
	}
	if *locality && !*adapt {
		fmt.Fprintln(os.Stderr, "htserved: -locality requires -adapt (the locality loop is an adaptivity controller)")
		os.Exit(2)
	}
	if *compile && !*adapt {
		fmt.Fprintln(os.Stderr, "htserved: -compile requires -adapt (continuous compilation shares the adaptivity control loop)")
		os.Exit(2)
	}
	if *hintsF != "" && !*compile {
		fmt.Fprintln(os.Stderr, "htserved: -hints-file requires -compile (there is no learned policy to persist otherwise)")
		os.Exit(2)
	}
	if (*locality || *scenario == "localhot") && *objects < 2 {
		fmt.Fprintln(os.Stderr, "htserved: -objects must be >= 2 for the data plane")
		os.Exit(2)
	}
	if *pipeline && *scenario != "" {
		fmt.Fprintln(os.Stderr, "htserved: -pipeline and -scenario are exclusive load modes")
		os.Exit(2)
	}
	if *pipeline && *fan < 1 {
		fmt.Fprintln(os.Stderr, "htserved: -fan must be >= 1")
		os.Exit(2)
	}
	if *observe < 0 || *observe > 1 {
		fmt.Fprintln(os.Stderr, "htserved: -observe must be in [0,1]")
		os.Exit(2)
	}
	if *dumpTr && *observe == 0 {
		fmt.Fprintln(os.Stderr, "htserved: -dump-traces requires -observe > 0 (nothing is recorded otherwise)")
		os.Exit(2)
	}

	if *listen != "" {
		// Cluster mode: the node owns its own litlx.System and
		// serve.Server; the single-process load modes below don't apply.
		runCluster(clusterOpts{
			listen: *listen, join: *join, nodes: *nodes,
			locales: *locales, workers: *workers, shards: *shards, depth: *depth,
			imgKB: *imgKB, rate: *rate, duration: *duration, seed: *seed, work: *work,
			detectEvery: *detEvery, detectMisses: *detMiss, flowTimeout: *flowTO,
		})
		return
	}

	sys, err := litlx.New(litlx.Config{Locales: *locales, WorkersPerLocale: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "htserved:", err)
		os.Exit(1)
	}
	defer sys.Close()
	cfg := serve.Config{Shards: *shards, QueueDepth: *depth, Batch: *batch}
	if *adapt {
		cfg.Adapt = serve.AdaptConfig{Enabled: true, LatencyBudget: *tight, Locality: *locality}
	}
	if *locality {
		cfg.Data = serve.DataConfig{LocalityRoute: true, Stage: true}
	}
	if *compile {
		ccfg := serve.CompileConfig{Enabled: true}
		if *hintsF != "" {
			db := hints.NewDB()
			if data, err := os.ReadFile(*hintsF); err == nil {
				if perr := hints.ParseScriptString(string(data), db); perr != nil {
					fmt.Fprintf(os.Stderr, "htserved: -hints-file %s: %v\n", *hintsF, perr)
					os.Exit(1)
				}
				fmt.Printf("loaded hints script %s: warm start\n", *hintsF)
			} else if !os.IsNotExist(err) {
				fmt.Fprintln(os.Stderr, "htserved:", err)
				os.Exit(1)
			}
			ccfg.DB = db
		}
		cfg.Compile = ccfg
	}
	if *pipeline {
		// Pipeline flows exist to route each stage at its data; -locality
		// additionally stages batches, but routing alone is the default.
		cfg.Data.LocalityRoute = true
	}
	if *observe > 0 || *httpAddr != "" {
		// -http alone turns on the metrics layer (Export publishes the
		// expvar Snapshot); -observe adds sampled flow tracing and the
		// flight recorder on top.
		cfg.Observe = serve.ObserveConfig{SampleRate: *observe, RingSize: *ring, Export: true}
	}
	srv := serve.New(sys, cfg)
	defer srv.Close()

	// Flight-recorder shutdown dump: the last thing the process prints,
	// after every report, so a scripted run's "why did those flows die?"
	// answer is always at the tail of stderr.
	if *dumpTr {
		defer func() {
			if r := srv.Recorder(); r != nil {
				r.WriteText(os.Stderr)
			}
		}()
	}
	if *httpAddr != "" {
		serveDebugHTTP(srv, *httpAddr)
	}

	if *pipeline {
		runPipelineFlows(sys, srv, *rate, *duration, *fan, *locales, *work, *keys, *loose, *seed)
		return
	}

	handler := func(_ *serve.Ctx, req serve.Request) (any, error) {
		spinwork.Work(*work)
		return req.Key, nil
	}
	// With the data plane (or the localhot script) each tenant declares
	// -objects data objects: the first quarter — the "hot" set the
	// localhot scenario hammers — homed together at locale 0, the rest
	// spread round-robin across the remaining locales.
	hotObjs := *objects / 4
	if hotObjs < 1 {
		hotObjs = 1
	}
	var specs []serve.DataObject
	if *locality || *scenario == "localhot" {
		specs = make([]serve.DataObject, *objects)
		for i := range specs {
			home := 0
			if i >= hotObjs && *locales > 1 {
				home = 1 + (i-hotObjs)%(*locales-1)
			}
			specs[i] = serve.DataObject{Size: 2048, Home: home}
		}
	}
	names := make([]string, *tenants)
	handles := make([]*serve.Tenant, *tenants)
	warmed := 0
	for i := range names {
		names[i] = fmt.Sprintf("tenant%03d", i)
		warm := float64(i) < *warmFrac*float64(*tenants)
		if warm {
			warmed++
		}
		tc := serve.TenantConfig{
			Name:     names[i],
			Handler:  handler,
			CodeSize: *imgKB << 10,
			Warm:     warm,
			Objects:  specs,
		}
		if *compile {
			// The tenant's specialized handler form: a promoted hot key
			// runs at a quarter of the general handler's cost, the gain
			// the fast-path table exists to bank.
			tc.Specialize = func(uint64) serve.Handler {
				return func(_ *serve.Ctx, req serve.Request) (any, error) {
					spinwork.Work(*work / 4)
					return req.Key, nil
				}
			}
		}
		tn, err := srv.RegisterTenant(tc)
		if err != nil {
			fmt.Fprintln(os.Stderr, "htserved:", err)
			os.Exit(1)
		}
		handles[i] = tn
	}
	coldC, warmC := handles[0].Model()
	fmt.Printf("htserved: %d tenants (%d warm) on %d shards, image %dKB "+
		"(modeled first request: cold %d cycles, warm %d cycles)\n",
		*tenants, warmed, *shards, *imgKB, coldC, warmC)
	var rep serve.LoadReport
	if *scenario != "" {
		// Scenario mode: a deterministic seeded script replaces the
		// wall-clock generator. -rate and -duration still size it: one
		// virtual tick is 1ms of play time.
		const tick = time.Millisecond
		ticks := int(*duration / tick)
		if ticks < 1 {
			ticks = 1
		}
		perTick := int(*rate * tick.Seconds())
		if perTick < 1 {
			perTick = 1
		}
		var sc serve.Scenario
		switch *scenario {
		case "bursty":
			sc = serve.BurstyScenario(*seed, *tenants, ticks, perTick, 10, 8*perTick, *keys)
		case "ramp":
			sc = serve.RampScenario(*seed, *tenants, ticks, 2*perTick, *keys)
		case "hotkey":
			sc = serve.HotKeyScenario(*seed, *tenants, ticks, perTick, *keys, *hotFrac)
		case "sameshard":
			sc = serve.SameShardScenario(*seed, ticks, perTick, *shards, names[0])
		case "localhot":
			sc = serve.LocalHotScenario(*seed, *tenants, ticks, perTick, *objects, hotObjs, *hotFrac, 0.3, *keys)
		case "shift":
			sc = serve.ShiftScenario(*seed, *tenants, ticks, perTick, *keys, *hotFrac)
		default:
			fmt.Fprintf(os.Stderr, "htserved: unknown -scenario %q\n", *scenario)
			os.Exit(2)
		}
		if *loose > 0 {
			sc = sc.WithDeadline(int(*loose / tick))
		}
		fmt.Printf("playing scenario %q: %d arrivals over %d ticks of %v (adapt=%v)...\n",
			sc.Name, sc.Offered(), sc.Ticks, tick, *adapt)
		rep = serve.PlayScenario(srv, sc, serve.PlayConfig{Tenants: handles, Tick: tick})
	} else {
		mode := "per-request"
		if *burst {
			mode = "burst (SubmitMany)"
		}
		fmt.Printf("offering %.0f jobs/s for %v (open loop, skew %.2f, %s admission, adapt=%v, locality=%v)...\n",
			*rate, *duration, *skew, mode, *adapt, *locality)
		lcfg := serve.LoadConfig{
			Rate:      *rate,
			Duration:  *duration,
			Tenants:   names,
			Skew:      *skew,
			KeySpace:  *keys,
			TightFrac: *tfrac,
			Tight:     *tight,
			Loose:     *loose,
			Burst:     *burst,
			Seed:      *seed,
		}
		if *locality {
			// Open-loop requests declare localhot-shaped working sets —
			// hotfrac of them read a hot (locale-0) object plus a sidecar,
			// 30% writing the sidecar — so the data plane engages without
			// a scenario script.
			objIDs := make([][]mem.ObjID, len(handles))
			for i, tn := range handles {
				objIDs[i] = tn.Objects()
			}
			lcfg.WorkingSet = func(ti int, rng *stats.RNG) ([]mem.ObjID, []mem.ObjID) {
				objs := objIDs[ti]
				if rng.Float64() < *hotFrac {
					primary := objs[rng.Intn(hotObjs)]
					sidecar := objs[hotObjs+rng.Intn(len(objs)-hotObjs)]
					reads := []mem.ObjID{primary, sidecar}
					if rng.Float64() < 0.3 {
						return reads, []mem.ObjID{sidecar}
					}
					return reads, nil
				}
				return []mem.ObjID{objs[rng.Intn(len(objs))]}, nil
			}
		}
		rep = serve.RunLoad(srv, lcfg)
	}

	tab := stats.NewTable("htserved load report", "metric", "value")
	tab.AddRow("offered", rep.Offered)
	tab.AddRow("completed", rep.Completed)
	tab.AddRow("rejected (backpressure)", rep.Rejected)
	tab.AddRow("shed (deadline)", rep.Shed)
	tab.AddRow("failed", rep.Failed)
	tab.AddRow("shed+reject rate", fmt.Sprintf("%.1f%%", 100*rep.ShedRate()))
	tab.AddRow("throughput jobs/s", fmt.Sprintf("%.1f", rep.Throughput))
	tab.AddRow("p50 latency", rep.P50)
	tab.AddRow("p99 latency", rep.P99)
	tab.AddRow("max latency", rep.Max)
	fmt.Println(tab.String())

	st := srv.Stats()
	fmt.Printf("server: %d batches for %d jobs (%.1f jobs/batch), %d cold code transfers, latency EWMA %.0fus\n",
		st.Batches, st.Done, float64(st.Done)/float64(max64(st.Batches, 1)), st.CodeTransfers, st.LatencyEWMAus)
	if *adapt {
		as := srv.AdaptStats()
		fmt.Printf("adapt: %d steals over %d rebalances, batch bounds %v (%d grows, %d shrinks), "+
			"%d low-priority sheds at level %d, wait EWMA %.0fus, imbalance %.2f\n",
			as.Steals, as.Rebalances, as.BatchSizes, as.BatchGrows, as.BatchShrinks,
			as.ShedLowPriority, as.ShedLevel, as.WaitEWMAus, as.Imbalance)
	}
	if *compile {
		as := srv.AdaptStats()
		fmt.Printf("compile: %d plans (%d swaps), %d hot-key promotions / %d demotions, "+
			"%d fast-path hits, %d scattered elements\n",
			as.CompilePlans, as.CompileSwaps, as.HotPromotions, as.HotDemotions,
			as.FastPathHits, as.ScatteredElems)
		if *hintsF != "" {
			f, err := os.Create(*hintsF)
			if err != nil {
				fmt.Fprintln(os.Stderr, "htserved:", err)
				os.Exit(1)
			}
			if err := srv.HintsDB().WriteScript(f); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "htserved:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Printf("wrote learned policy to %s\n", *hintsF)
		}
	}
	if sp := sys.Space.Stats(); sp.Reads+sp.Writes > 0 {
		fmt.Printf("data: %d accesses (%.1f%% remote), modeled cost %d, %d staged, "+
			"%d migrations, %d replications\n",
			sp.Reads+sp.Writes, 100*sys.Space.RemoteFraction(), sp.TotalCost,
			st.DataStaged, st.Migrations, st.Replications)
	}
	if ob := srv.Snapshot().Observe; ob.Enabled {
		fmt.Printf("observe: %d traced flows (rate %.3g), %d in flight recorder, %d adapt events (%d dropped)\n",
			ob.TracedFlows, ob.SampleRate, ob.Recorded, ob.AdaptEvents, ob.DroppedEvents)
	}
}

// serveDebugHTTP exposes the server's observability surface over HTTP:
// /debug/serve/metrics (the JSON Snapshot), /debug/serve/trace (the
// adapt timeline plus flight-recorder span trees), plus the /debug/vars
// expvar dump (the serve layer publishes its Snapshot there under
// "serve") and net/http/pprof, both registered on the default mux by
// their packages. The listener binds before returning so callers can
// poll immediately; serving runs in the background for the lifetime of
// the load run.
func serveDebugHTTP(srv *serve.Server, addr string) {
	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(v); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	}
	http.HandleFunc("/debug/serve/metrics", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, srv.Snapshot())
	})
	http.HandleFunc("/debug/serve/trace", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, srv.TraceDump())
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htserved: -http:", err)
		os.Exit(1)
	}
	fmt.Printf("debug endpoints on http://%s/debug/serve/metrics\n", ln.Addr())
	go func() { _ = http.Serve(ln, nil) }()
}

// runPipelineFlows is the -pipeline mode: a dedicated tenant registers
// the V4-shaped object set (a hot document and result at locale 0,
// element blocks spread across the remaining locales), compiles a
// 3-stage fan-out pipeline whose stages declare their working sets, and
// the open-loop flow generator offers whole flows at -rate. Each stage
// burns -work spin units; -loose is the per-flow deadline the pipeline
// propagates to every stage.
func runPipelineFlows(sys *litlx.System, srv *serve.Server, rate float64, duration time.Duration,
	fan, locales int, work int64, keys uint64, deadline time.Duration, seed uint64) {
	specs := make([]serve.DataObject, fan+2)
	specs[0] = serve.DataObject{Size: 2048, Home: 0}
	for j := 1; j <= fan; j++ {
		home := 0
		if locales > 1 {
			home = 1 + (j-1)%(locales-1)
		}
		specs[j] = serve.DataObject{Size: 2048, Home: home}
	}
	specs[fan+1] = serve.DataObject{Size: 512, Home: 0}
	tn, err := srv.RegisterTenant(serve.TenantConfig{
		Name:    "flows",
		Handler: func(_ *serve.Ctx, req serve.Request) (any, error) { return req.Payload, nil },
		Objects: specs,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "htserved:", err)
		os.Exit(1)
	}
	objs := tn.Objects()
	doc, elems, result := objs[0:1], objs[1:fan+1], objs[fan+1:fan+2]
	pl, err := tn.NewPipeline("fan",
		serve.Stage{Name: "parse",
			WorkingSet: func(any) []mem.ObjID { return doc },
			Handler: func(_ *serve.Ctx, _ serve.Request) (any, error) {
				spinwork.Work(work)
				parts := make([]any, fan)
				for i := range parts {
					parts[i] = i
				}
				return parts, nil
			}},
		serve.Stage{Name: "enrich", Map: true,
			Key:        func(v any) uint64 { return uint64(v.(int)) },
			WorkingSet: func(v any) []mem.ObjID { return elems[v.(int) : v.(int)+1] },
			Handler: func(_ *serve.Ctx, req serve.Request) (any, error) {
				spinwork.Work(work)
				return req.Payload, nil
			}},
		serve.Stage{Name: "aggregate",
			WorkingSet: func(any) []mem.ObjID { return result },
			WriteSet:   func(any) []mem.ObjID { return result },
			Handler: func(_ *serve.Ctx, req serve.Request) (any, error) {
				spinwork.Work(work)
				return len(req.Payload.([]any)), nil
			}},
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htserved:", err)
		os.Exit(1)
	}
	fmt.Printf("offering %.0f flows/s for %v through a 3-stage fan-out pipeline (width %d, locality-routed stages)...\n",
		rate, duration, fan)
	rep := serve.RunFlows(srv, serve.FlowLoadConfig{
		Pipeline: pl, Rate: rate, Duration: duration,
		KeySpace: keys, Deadline: deadline, Seed: seed,
	})

	tab := stats.NewTable("htserved pipeline flow report", "metric", "value")
	tab.AddRow("flows offered", rep.Offered)
	tab.AddRow("flows completed", rep.Completed)
	tab.AddRow("flows rejected", rep.Rejected)
	tab.AddRow("flows shed", rep.Shed)
	tab.AddRow("flows failed", rep.Failed)
	tab.AddRow("throughput flows/s", fmt.Sprintf("%.1f", rep.Throughput))
	tab.AddRow("p50 flow latency", rep.P50)
	tab.AddRow("p99 flow latency", rep.P99)
	fmt.Println(tab.String())

	st := srv.Stats()
	fmt.Printf("flows: %d submitted, %d stage jobs (%d fan-out elements), %d stage steals\n",
		st.Flow.Submitted, st.Flow.StageJobs, st.Flow.FanOut, st.Flow.StageSteals)
	stab := stats.NewTable("pipeline stages", "stage", "done", "shed", "failed", "fanout", "steals", "local", "remote")
	for _, ss := range pl.StageStats() {
		stab.AddRow(ss.Name, ss.Done, ss.Shed, ss.Failed, ss.FanOut, ss.Steals, ss.LocalExec, ss.RemoteExec)
	}
	fmt.Println(stab.String())
	if sp := sys.Space.Stats(); sp.Reads+sp.Writes > 0 {
		fmt.Printf("data: %d accesses (%.1f%% remote), modeled cost %d\n",
			sp.Reads+sp.Writes, 100*sys.Space.RemoteFraction(), sp.TotalCost)
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
