package main

// Cluster mode (-listen / -join / -nodes): each htserved process is one
// cluster node on the real TCP parcel transport. Every node registers
// the same demo tenant and 3-stage pipeline (symmetric registration,
// like parcel handlers), waits for the membership to reach -nodes, then
// drives -rate flows/s for -duration — or, at -rate 0, just hosts its
// locale range and serves stages forwarded by peers. Stage routes
// re-key from the stage value, so one flow's stages spread across the
// ring and a multi-node run moves real parcels, code images, and
// objects over the sockets.
//
// Three-shell quickstart (see README "Cluster"):
//
//	htserved -listen 127.0.0.1:7101 -nodes 3 -rate 0 -duration 60s
//	htserved -listen 127.0.0.1:7102 -join 127.0.0.1:7101 -nodes 3 -rate 0 -duration 60s
//	htserved -listen 127.0.0.1:7103 -join 127.0.0.1:7101 -nodes 3 -rate 500 -duration 5s

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/netparcel"
	"repro/internal/litlx"
	"repro/internal/parcel"
	"repro/internal/serve"
	"repro/internal/spinwork"
	"repro/internal/stats"
)

type clusterOpts struct {
	listen, join     string
	nodes            int
	locales, workers int
	shards, depth    int
	imgKB            int
	rate             float64
	duration         time.Duration
	seed             uint64
	work             int64
	detectEvery      time.Duration
	detectMisses     int
	flowTimeout      time.Duration
}

func runCluster(o clusterOpts) {
	if o.nodes > 1 && o.locales < 16*o.nodes {
		// Each node holds ONE cut on the ring, so its share of the locale
		// space is its arc length quantized to whole locales; a coarse
		// locale space can round an unlucky node's share down to nothing.
		fmt.Fprintf(os.Stderr, "htserved: warning: -locales %d is coarse for %d nodes; "+
			"use -locales %d or more for even ownership\n", o.locales, o.nodes, 16*o.nodes)
	}
	tr, err := netparcel.Listen(parcel.NodeID("ht@"+o.listen), o.listen, netparcel.Config{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "htserved: -listen:", err)
		os.Exit(1)
	}
	node, err := cluster.NewNode(cluster.Config{
		Transport: tr,
		System:    litlx.Config{Locales: o.locales, WorkersPerLocale: o.workers, Seed: o.seed},
		Serve:     serve.Config{Shards: o.shards, QueueDepth: o.depth},
		Detect:    cluster.DetectConfig{Every: o.detectEvery, Misses: o.detectMisses},
		Recover:   cluster.RecoverConfig{FlowTimeout: o.flowTimeout},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "htserved:", err)
		os.Exit(1)
	}
	defer node.Close()
	pipe, err := registerClusterDemo(node, o.imgKB, o.work, o.locales)
	if err != nil {
		fmt.Fprintln(os.Stderr, "htserved:", err)
		os.Exit(1)
	}
	fmt.Printf("cluster: node %s listening on %s (%d global locales)\n",
		node.Self(), node.Transport().Addr(), o.locales)

	if o.join != "" {
		// The seed may still be binding; retry briefly.
		deadline := time.Now().Add(15 * time.Second)
		for {
			if err = node.Join(o.join); err == nil {
				break
			}
			if time.Now().After(deadline) {
				fmt.Fprintln(os.Stderr, "htserved: -join:", err)
				os.Exit(1)
			}
			time.Sleep(200 * time.Millisecond)
		}
		fmt.Printf("cluster: joined via %s, members=%d\n", o.join, len(node.Members()))
	}
	if o.nodes > 1 {
		deadline := time.Now().Add(60 * time.Second)
		for len(node.Members()) < o.nodes {
			if time.Now().After(deadline) {
				fmt.Fprintf(os.Stderr, "htserved: cluster reached %d of %d members before timeout\n",
					len(node.Members()), o.nodes)
				os.Exit(1)
			}
			time.Sleep(50 * time.Millisecond)
		}
		fmt.Printf("cluster: membership complete: %v\n", node.Members())
	}

	var offered, ok, shed, failed int64
	if o.rate > 0 {
		fmt.Printf("offering %.0f flows/s for %v through the cluster pipeline...\n", o.rate, o.duration)
		var wg sync.WaitGroup
		interval := time.Duration(float64(time.Second) / o.rate)
		if interval <= 0 {
			interval = time.Microsecond
		}
		end := time.Now().Add(o.duration)
		rng := stats.NewRNG(o.seed)
		for i := 0; time.Now().Before(end); i++ {
			wg.Add(1)
			offered++
			err := pipe.SubmitFunc(serve.Request{Key: rng.Uint64(), Payload: i}, func(r serve.Result) {
				switch r.Status {
				case serve.StatusOK:
					atomic.AddInt64(&ok, 1)
				case serve.StatusShed:
					atomic.AddInt64(&shed, 1)
				default:
					atomic.AddInt64(&failed, 1)
				}
				wg.Done()
			})
			if err != nil {
				offered--
				wg.Done()
			}
			time.Sleep(interval)
		}
		wg.Wait()
	} else {
		// Host-only: own the locale range, serve forwarded stages.
		fmt.Printf("hosting locales %v for %v...\n", node.OwnedLocales(), o.duration)
		time.Sleep(o.duration)
	}

	sts := node.ClusterStats()
	var remote, forwarded, fetches, percolate, wire int64
	for _, st := range sts {
		remote += st.RemoteStages
		forwarded += st.ForwardedStages
		fetches += st.CodeFetches + st.ObjectFetches
		percolate += st.PercolateBytes
		wire += st.Wire.BytesSent
	}
	fmt.Printf("cluster: members=%d owned_locales=%d flows=%d ok=%d shed=%d failed=%d "+
		"remote_stages=%d forwarded=%d fetches=%d percolate_bytes=%d wire_bytes=%d\n",
		len(node.Members()), len(node.OwnedLocales()), offered, ok, shed, failed,
		remote, forwarded, fetches, percolate, wire)
	for _, st := range sts {
		fmt.Printf("  node %s: owned=%d remote_stages=%d local_stages=%d forwarded=%d "+
			"fetches=%d wire_sent=%d wire_recv=%d\n",
			st.Node, st.OwnedLocales, st.RemoteStages, st.LocalStages, st.ForwardedStages,
			st.CodeFetches+st.ObjectFetches, st.Wire.BytesSent, st.Wire.BytesRecv)
	}
}

// registerClusterDemo installs the demo tenant and pipeline every
// cluster-mode node runs: three stages whose routes re-key from the
// stage value, plus one global object per locale so remote stages
// percolate real bytes.
func registerClusterDemo(n *cluster.Node, imgKB int, work int64, locales int) (*cluster.Pipeline, error) {
	handler := func(_ *serve.Ctx, req serve.Request) (any, error) {
		spinwork.Work(work)
		return req.Payload.(int) + 1, nil
	}
	globals := make([]cluster.GlobalObject, locales)
	for i := range globals {
		globals[i] = cluster.GlobalObject{Name: fmt.Sprintf("block%d", i), Size: 4 << 10, Home: i}
	}
	t, err := n.RegisterTenant(cluster.TenantConfig{
		Serve:   serve.TenantConfig{Name: "demo", Handler: handler, CodeSize: imgKB << 10},
		Globals: globals,
	})
	if err != nil {
		return nil, err
	}
	rekey := func(v any) (uint64, []string) {
		x, _ := v.(int)
		h := uint64(x) * 0x9E3779B97F4A7C15
		h ^= h >> 33
		return h, []string{fmt.Sprintf("block%d", x%locales)}
	}
	return t.NewPipeline(cluster.PipelineConfig{
		Name: "demo3",
		Stages: []serve.Stage{
			{Name: "ingest", Handler: handler},
			{Name: "transform", Handler: handler},
			{Name: "emit", Handler: handler},
		},
		Routes: []cluster.StageRoute{nil, rekey, rekey},
	})
}
