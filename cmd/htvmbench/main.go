// Command htvmbench regenerates the paper's experiments (see DESIGN.md's
// per-experiment index and EXPERIMENTS.md for the interpretation of
// each). With no arguments it runs everything at scale 1.
//
// Usage:
//
//	htvmbench [-scale N] [-list] [exp ...]
//
// Examples:
//
//	htvmbench                 # all experiments
//	htvmbench S1 S2           # just the SSP series
//	htvmbench -scale 4 F2     # bigger neuron network
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	scale := flag.Int("scale", 1, "workload scale factor (>= 1)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(exp.IDs(), "\n"))
		return
	}
	ids := flag.Args()
	if len(ids) == 0 {
		ids = exp.IDs()
	}
	exitCode := 0
	for _, id := range ids {
		t0 := time.Now()
		res, err := exp.Run(strings.ToUpper(id), *scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "htvmbench: %v\n", err)
			exitCode = 1
			continue
		}
		fmt.Println(res.Table.String())
		if len(res.Metrics) > 0 {
			keys := make([]string, 0, len(res.Metrics))
			for k := range res.Metrics {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Print("headline: ")
			for i, k := range keys {
				if i > 0 {
					fmt.Print("  ")
				}
				fmt.Printf("%s=%.3g", k, res.Metrics[k])
			}
			fmt.Println()
		}
		fmt.Printf("(%s in %v)\n\n", res.ID, time.Since(t0).Round(time.Millisecond))
	}
	os.Exit(exitCode)
}
