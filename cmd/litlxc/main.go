// Command litlxc is the LITL-X driver: it reads a script combining the
// structured-hints language (fact/hint/rule, Section 4.1) with kernel
// declarations (loop nests, Section 3.3), runs the continuous compiler
// over every kernel, and prints the resulting plans — the per-level
// analysis of the static phase and the completed schedule of the
// dynamic phase.
//
// Usage:
//
//	litlxc [-workers N] [-explain] file.lx
//	litlxc -demo            # run the built-in pNeocortex demo script
//
// Script statements (one per line, # comments):
//
//	fact <name> <number>
//	hint <name> target=... category=... priority=N key=value ...
//	rule <hint> when <fact> <op> <number> set <key>=<value>
//	kernel <name> trips=... ops=name:res:lat,... deps=f-t@d0:d1,...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/compiler"
	"repro/internal/hints"
	"repro/internal/litlx"
	"repro/internal/loopir"
	"repro/internal/monitor"
)

const demoScript = `
# pNeocortex demo: Fig. 3's flow in miniature.
fact columns 64
hint kernelmap target=compiler category=computation-pattern priority=80 strategy=factoring chunk=2
rule kernelmap when iter.cv > 0.8 set strategy=self
kernel neuron-update trips=64,8 ops=load:mem:3,integrate:fpu:5,threshold:alu:1,store:mem:1 deps=0-1@0:0,1-2@0:0,2-3@0:0,1-1@0:1
kernel synapse-gather trips=128,4 ops=load:mem:4,acc:fpu:3,store:mem:1 deps=0-1@0:0,1-2@0:0
`

func main() {
	workers := flag.Int("workers", 8, "thread count for dynamic completion")
	explain := flag.Bool("explain", false, "print per-level static analysis")
	demo := flag.Bool("demo", false, "run the built-in demo script")
	flag.Parse()

	var text string
	switch {
	case *demo:
		text = demoScript
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		text = string(b)
	default:
		fmt.Fprintln(os.Stderr, "usage: litlxc [-workers N] [-explain] file.lx | litlxc -demo")
		os.Exit(2)
	}

	db := hints.NewDB()
	var nests []*loopir.Nest
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	var hintLines []string
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "kernel ") {
			n, err := litlx.ParseKernel(line)
			if err != nil {
				fatal(fmt.Errorf("line %d: %w", lineNo, err))
			}
			nests = append(nests, n)
			continue
		}
		hintLines = append(hintLines, line)
	}
	if err := hints.ParseScriptString(strings.Join(hintLines, "\n"), db); err != nil {
		fatal(err)
	}
	if len(nests) == 0 {
		fatal(fmt.Errorf("no kernels in script"))
	}

	mon := monitor.New()
	comp := compiler.New(db, loopir.DefaultResources(), mon)
	prog := &compiler.Program{Name: "litlx-script", Nests: nests}

	pps, err := comp.StaticCompile(prog)
	if err != nil {
		fatal(err)
	}
	for _, pp := range pps {
		fmt.Printf("kernel %s (depth %d)\n", pp.Nest.Name, pp.Nest.Depth())
		if *explain {
			for _, li := range pp.Levels {
				if li.Legal {
					fmt.Printf("  level %d: legal, MII=%d\n", li.Level, li.MII)
				} else {
					fmt.Printf("  level %d: illegal (%s)\n", li.Level, li.Reason)
				}
			}
			if pp.ForcedLevel >= 0 {
				fmt.Printf("  pragma forces level %d\n", pp.ForcedLevel)
			}
		}
		fp, err := comp.DynamicComplete(pp, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("  plan: level=%d II=%d span=%d stages=%d threads=%d strategy=%s predicted=%d cycles\n",
			fp.Level, fp.Schedule.II, fp.Schedule.Span, fp.Schedule.Stages,
			fp.Threads, fp.Strategy, fp.PredictedCycles)
		serial := fp.Nest.SerialCycles()
		fmt.Printf("  model speedup vs serial: %.2fx (serial %d cycles)\n\n",
			float64(serial)/float64(fp.PredictedCycles), serial)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "litlxc: %v\n", err)
	os.Exit(1)
}
