package htvm_test

import (
	"testing"

	"repro/internal/exp"
)

// benchExp wraps one experiment from the harness as a Go benchmark: the
// experiment runs once per b.N iteration and its headline metrics are
// attached via b.ReportMetric, so `go test -bench` regenerates every
// table/figure series of EXPERIMENTS.md.
func benchExp(b *testing.B, id string) {
	b.Helper()
	var last *exp.Result
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(id, 1)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for k, v := range last.Metrics {
		b.ReportMetric(v, k)
	}
	if testing.Verbose() {
		b.Log("\n" + last.Table.String())
	}
}

// Fig. 1: the whole software stack end to end.
func BenchmarkExpF1Pipeline(b *testing.B) { benchExp(b, "F1") }

// Fig. 2: neuron network, flat vs hierarchical threading.
func BenchmarkExpF2Hierarchy(b *testing.B) { benchExp(b, "F2") }

// Fig. 3: domain hints, unhinted vs hinted mapping.
func BenchmarkExpF3Hints(b *testing.B) { benchExp(b, "F3") }

// Section 2, adaptivity class 1: loop parallelism adaptation.
func BenchmarkExpA1LoopAdapt(b *testing.B) { benchExp(b, "A1") }

// Section 2, adaptivity class 2: dynamic load adaptation.
func BenchmarkExpA2LoadBalance(b *testing.B) { benchExp(b, "A2") }

// Section 2, adaptivity class 3: locality adaptation.
func BenchmarkExpA3Locality(b *testing.B) { benchExp(b, "A3") }

// Section 2, adaptivity class 4: latency adaptation.
func BenchmarkExpA4Latency(b *testing.B) { benchExp(b, "A4") }

// Section 3.2: parcels vs remote fetch.
func BenchmarkExpL1Parcels(b *testing.B) { benchExp(b, "L1") }

// Section 3.2: futures.
func BenchmarkExpL2Futures(b *testing.B) { benchExp(b, "L2") }

// Section 3.2: percolation.
func BenchmarkExpL3Percolation(b *testing.B) { benchExp(b, "L3") }

// Section 3.2: dataflow sync and atomic blocks.
func BenchmarkExpL4Sync(b *testing.B) { benchExp(b, "L4") }

// Section 3.3: SSP vs innermost modulo scheduling.
func BenchmarkExpS1SSP(b *testing.B) { benchExp(b, "S1") }

// Section 3.3: SSP + threads hybrid scaling.
func BenchmarkExpS2Hybrid(b *testing.B) { benchExp(b, "S2") }

// Section 3.3: dynamic loop scheduling family.
func BenchmarkExpS3LoopSched(b *testing.B) { benchExp(b, "S3") }

// Section 5.2: the neuroscience experimental plan.
func BenchmarkExpN1Neuro(b *testing.B) { benchExp(b, "N1") }

// Section 5.2: the molecular dynamics experimental plan.
func BenchmarkExpM1MD(b *testing.B) { benchExp(b, "M1") }

// Section 3.1: the thread-grain cost model.
func BenchmarkExpG1GrainCost(b *testing.B) { benchExp(b, "G1") }

// internal/serve: the job service layer under open-loop load, with
// percolation warm-up (serve-loadtest).
func BenchmarkExpV1ServeLoadtest(b *testing.B) { benchExp(b, "V1") }

// internal/serve + internal/adapt: the closed adaptivity loop (batch
// retuning, shard stealing) against a static config on deterministic
// skewed-load scripts.
func BenchmarkExpV2AdaptiveServe(b *testing.B) { benchExp(b, "V2") }

// internal/serve + internal/mem: the locale-aware data plane (locality
// routing, working-set staging, the locality loop) against hash-routed
// cold access on the localhot script.
func BenchmarkExpV3DataLocality(b *testing.B) { benchExp(b, "V3") }

// Serving path: future-chained pipeline flows vs per-stage resubmission.
func BenchmarkExpV4PipelineFlows(b *testing.B) { benchExp(b, "V4") }
