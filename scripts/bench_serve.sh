#!/bin/sh
# Regenerates or checks BENCH_serve.json, the serve hot-path benchmark
# baseline.
#
# Usage: scripts/bench_serve.sh [-check] [raw-bench-output-file]
#
# With no argument, runs the internal/serve benchmarks (full default
# benchtime, Config.Observe zero-valued — the disabled-path numbers)
# and rewrites BENCH_serve.json at the repo root. With an argument,
# parses an existing `go test -bench` output file instead of re-running.
#
# With -check, runs the benchmarks (BENCH_ARGS adds flags, e.g.
# BENCH_ARGS="-benchtime 100x" for a quick CI gate) and compares each
# benchmark's allocs/op against the committed baseline instead of
# rewriting it, exiting 1 on regression. ns/op and B/op drift with the
# machine; allocs/op should not, so that is the gated invariant — a
# candidate fails when it allocates more than baseline + 10% + 1
# (the slack absorbs batch-boundary jitter at short benchtimes).
#
# -check also gates a same-machine throughput ratio: absolute ns/op
# drifts with hardware, but the ratio between two benchmarks of the
# same run does not, so it catches order-of-magnitude collapses (a
# contended ring, a lost batch amortization) that an allocs-only gate
# would miss. SubmitManyBurst/64 vs SubmitHandle: the per-request cost
# of a burst must stay within 6x of a single submit. The bound is
# deliberately loose — CI runs at -benchtime 100x where per-run noise
# is large, and the burst cycle is closed-loop (execution included).
# SubmitHandleSketch vs SubmitHandle bounds the continuous-compilation
# observation tax (key sketch on admission, fast-table probe at
# dispatch) to 3x a plain submit — steady-state it is ~15%, and the
# sketch path shares the zero-allocs/op gate with the plain path.
# RunParallel ratios are NOT gated: at 100 iterations they measure
# goroutine setup, not throughput.
#
# Set BENCH_RAW_OUT to keep the raw `go test -bench` output at that
# path (CI uploads it as an artifact); otherwise it goes to a temp
# file.
#
# The file this writes is the reference the observability work is held
# to: allocs/op on Submit* must not grow while Observe is off. Compare
# a candidate change by hand with:
#
#   go test ./internal/serve/ -bench . -run '^$' | scripts/bench_serve.sh /dev/stdin
set -eu

cd "$(dirname "$0")/.."

if [ "${1:-}" = "-check" ]; then
    if [ -n "${BENCH_RAW_OUT:-}" ]; then
        raw="$BENCH_RAW_OUT"
    else
        raw=$(mktemp)
        trap 'rm -f "$raw"' EXIT
    fi
    # shellcheck disable=SC2086 # BENCH_ARGS is deliberately word-split
    go test ./internal/serve/ -bench . -run '^$' -count 1 ${BENCH_ARGS:-} | tee "$raw" >&2
    awk '
    FNR == 1 { file++ }
    # Pass 1: the committed baseline. One benchmark object per line.
    file == 1 && /"name":/ {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        al = $0
        if (sub(/.*"allocs_per_op": /, "", al)) { sub(/[^0-9.].*$/, "", al); base[name] = al }
    }
    # Pass 2: the candidate run.
    file == 2 && /^Benchmark/ {
        name = $1
        sub(/^Benchmark/, "", name)
        sub(/-[0-9]+$/, "", name)
        for (i = 3; i <= NF; i++) {
            if ($(i) == "allocs/op") cand[name] = $(i - 1)
            if ($(i) == "ns/op")     cns[name]  = $(i - 1)
        }
    }
    function ratio_gate(label, num, den, bound,    r, status) {
        if (!(num in cns) || !(den in cns) || cns[den] + 0 == 0) {
            printf "bench-check: MISSING ratio %s (needs %s and %s in run)\n", label, num, den
            return 1
        }
        r = (cns[num] / cns[den])
        status = (r > bound) ? "FAIL" : "ok"
        printf "bench-check: %-4s ratio %-28s %.2f (bound %.1f)\n", status, label, r, bound
        return status == "FAIL"
    }
    END {
        failed = 0; checked = 0
        for (name in base) {
            if (!(name in cand)) { printf "bench-check: MISSING %s (in baseline, not in run)\n", name; failed = 1; continue }
            checked++
            limit = base[name] * 1.10 + 1
            status = (cand[name] + 0 > limit) ? "FAIL" : "ok"
            if (status == "FAIL") failed = 1
            printf "bench-check: %-4s %-24s allocs/op %s (baseline %s, limit %.1f)\n", status, name, cand[name], base[name], limit
        }
        if (checked == 0) { print "bench-check: no benchmarks compared"; failed = 1 }
        # Same-machine throughput ratios (see header comment). The burst
        # benchmark admits 64 requests per op.
        if ("SubmitManyBurst" in cns) cns["SubmitManyBurstPerReq"] = cns["SubmitManyBurst"] / 64
        failed += ratio_gate("burst-per-req/single", "SubmitManyBurstPerReq", "SubmitHandle", 6.0)
        failed += ratio_gate("sketch/handle", "SubmitHandleSketch", "SubmitHandle", 3.0)
        exit (failed > 0 ? 1 : 0)
    }' BENCH_serve.json "$raw"
    exit $?
fi

raw="${1:-}"
if [ -z "$raw" ]; then
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    go test ./internal/serve/ -bench . -run '^$' -count 1 | tee "$raw" >&2
fi

awk '
BEGIN { n = 0 }
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix if present
    iters[n] = $2
    ns[n] = $3
    b[n] = ""; allocs[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") b[n] = $(i - 1)
        if ($(i) == "allocs/op") allocs[n] = $(i - 1)
    }
    names[n] = name
    n++
}
END {
    printf "{\n"
    printf "  \"package\": \"%s\",\n", pkg
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"note\": \"serve hot-path baseline with Config.Observe zero-valued; allocs_per_op is the guarded invariant\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", names[i], iters[i], ns[i]
        if (b[i] != "") printf ", \"bytes_per_op\": %s", b[i]
        if (allocs[i] != "") printf ", \"allocs_per_op\": %s", allocs[i]
        printf "}%s\n", (i < n - 1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$raw" > BENCH_serve.json

echo "wrote BENCH_serve.json" >&2
