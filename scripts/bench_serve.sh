#!/bin/sh
# Regenerates BENCH_serve.json, the serve hot-path benchmark baseline.
#
# Usage: scripts/bench_serve.sh [raw-bench-output-file]
#
# With no argument, runs the internal/serve benchmarks (full default
# benchtime, Config.Observe zero-valued — the disabled-path numbers)
# and rewrites BENCH_serve.json at the repo root. With an argument,
# parses an existing `go test -bench` output file instead of re-running.
#
# The file this writes is the reference the observability work is held
# to: allocs/op on Submit* must not grow while Observe is off. Compare
# a candidate change with:
#
#   go test ./internal/serve/ -bench . -run '^$' | scripts/bench_serve.sh /dev/stdin
#
# and diff the allocs_per_op fields against the committed baseline
# (ns/op and B/op drift with the machine; allocs/op should not).
set -eu

cd "$(dirname "$0")/.."

raw="${1:-}"
if [ -z "$raw" ]; then
    raw=$(mktemp)
    trap 'rm -f "$raw"' EXIT
    go test ./internal/serve/ -bench . -run '^$' -count 1 | tee "$raw" >&2
fi

awk '
BEGIN { n = 0 }
/^pkg:/ { pkg = $2 }
/^cpu:/ { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    name = $1
    sub(/^Benchmark/, "", name)
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix if present
    iters[n] = $2
    ns[n] = $3
    b[n] = ""; allocs[n] = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op") b[n] = $(i - 1)
        if ($(i) == "allocs/op") allocs[n] = $(i - 1)
    }
    names[n] = name
    n++
}
END {
    printf "{\n"
    printf "  \"package\": \"%s\",\n", pkg
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"note\": \"serve hot-path baseline with Config.Observe zero-valued; allocs_per_op is the guarded invariant\",\n"
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) {
        printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", names[i], iters[i], ns[i]
        if (b[i] != "") printf ", \"bytes_per_op\": %s", b[i]
        if (allocs[i] != "") printf ", \"allocs_per_op\": %s", allocs[i]
        printf "}%s\n", (i < n - 1 ? "," : "")
    }
    printf "  ]\n}\n"
}' "$raw" > BENCH_serve.json

echo "wrote BENCH_serve.json" >&2
